// Copyright (c) 2026 The tsq Authors.
//
// Tests for the v2 write contract's core promise: Database::InsertBatch
// assigns dense ids in argument order and produces a byte-identical
// relation directory at every ingest thread count and relative to the
// one-by-one Insert path; plus crash recovery at the Database level (a
// torn tail record is dropped on reopen and the index still opens).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "gtest/gtest.h"
#include "storage/relation.h"
#include "test_util.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using testing::TempDir;

constexpr size_t kLength = 16;

/// A small deterministic workload as parallel name/value vectors.
void MakeWorkload(size_t count, std::vector<std::string>* names,
                  std::vector<RealVec>* values) {
  const auto data = workload::MakeRandomWalkDataset(20260729, count, kLength);
  for (const TimeSeries& s : data) {
    names->push_back(s.name());
    values->push_back(s.values());
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every segment file of `db`'s relation, concatenated with separators —
/// the whole on-disk relation directory as one comparable string.
std::string RelationBytes(Database* db) {
  std::string all;
  for (size_t s = 0; s < db->relation()->num_segments(); ++s) {
    all += "\n--segment " + std::to_string(s) + "--\n";
    all += ReadFileBytes(db->relation()->SegmentPath(s));
  }
  return all;
}

TEST(InsertBatchTest, AssignsDenseIdsInArgumentOrder) {
  TempDir dir;
  std::vector<std::string> names;
  std::vector<RealVec> values;
  MakeWorkload(23, &names, &values);

  DatabaseOptions options;
  options.directory = dir.path();
  options.relation_segments = 4;
  auto db = Database::Create(options).value();
  auto ids = db->InsertBatch(names, values, /*threads=*/4);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ((*ids)[i], i);
    auto rec = db->Get(i);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->name, names[i]);
    EXPECT_EQ(rec->values, values[i]);
  }
  EXPECT_EQ(db->size(), names.size());
  // A second batch continues the dense sequence.
  auto more = db->InsertBatch({"tail"}, {RealVec(kLength, 1.0)});
  ASSERT_TRUE(more.ok());
  EXPECT_EQ((*more)[0], names.size());
}

TEST(InsertBatchTest, ByteIdenticalAcrossThreadCountsAndVsInsert) {
  // The acceptance bar of the v2 write contract: same names+values in,
  // same segment-file bytes out — at 1, 2, 4 and 8 ingest threads, for
  // one and for several segments, and identical to the sequential
  // Insert-by-Insert path.
  std::vector<std::string> names;
  std::vector<RealVec> values;
  MakeWorkload(41, &names, &values);

  for (const size_t segments : {1u, 4u}) {
    TempDir dir;
    // Ground truth: one-by-one Insert.
    DatabaseOptions options;
    options.directory = dir.path();
    options.relation_segments = segments;
    options.name = "seq";
    auto seq_db = Database::Create(options).value();
    for (size_t i = 0; i < names.size(); ++i) {
      ASSERT_TRUE(seq_db->Insert(names[i], values[i]).ok());
    }
    const std::string expected = RelationBytes(seq_db.get());

    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      DatabaseOptions batch_options;
      batch_options.directory = dir.path();
      batch_options.relation_segments = segments;
      batch_options.name = "b" + std::to_string(threads);
      auto db = Database::Create(batch_options).value();
      auto ids = db->InsertBatch(names, values, threads);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      EXPECT_EQ(RelationBytes(db.get()), expected)
          << "segments=" << segments << " threads=" << threads;
      // Scan order (the dense-id semantics) is bit-identical too.
      std::vector<std::string> scanned;
      ASSERT_TRUE(db->relation()
                      ->Scan([&scanned](const SeriesRecord& rec) {
                        scanned.push_back(rec.name);
                        return true;
                      })
                      .ok());
      EXPECT_EQ(scanned, names);
    }
  }
}

TEST(InsertBatchTest, RejectsBadBatchesWithoutSideEffects) {
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  auto db = Database::Create(options).value();

  EXPECT_TRUE(db->InsertBatch({"a", "b"}, {RealVec(kLength, 1.0)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db->InsertBatch({"a"}, {RealVec{}}).status().IsInvalidArgument());
  EXPECT_TRUE(db->InsertBatch({"a", "b"},
                              {RealVec(kLength, 1.0), RealVec(kLength + 1, 1.0)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(db->size(), 0u);
  EXPECT_EQ(db->series_length(), 0u);
  // An empty batch is a no-op, not an error.
  auto empty = db->InsertBatch({}, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // A good batch still lands on the untouched database.
  ASSERT_TRUE(db->InsertBatch({"a"}, {RealVec(kLength, 1.0)}).ok());
  EXPECT_EQ(db->size(), 1u);
  // A later batch of the wrong length is rejected against the fixed one.
  EXPECT_TRUE(db->InsertBatch({"b"}, {RealVec(kLength + 2, 1.0)})
                  .status()
                  .IsInvalidArgument());
}

TEST(InsertBatchTest, IndexedBatchMatchesIncrementalInserts) {
  // With the index built, InsertBatch folds the batch into the tree; the
  // database must answer exactly like one grown by individual Inserts.
  std::vector<std::string> names;
  std::vector<RealVec> values;
  MakeWorkload(30, &names, &values);

  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "inc";
  auto inc_db = Database::Create(options).value();
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(inc_db->Insert(names[i], values[i]).ok());
  }
  ASSERT_TRUE(inc_db->BuildIndex().ok());
  for (size_t i = 10; i < names.size(); ++i) {
    ASSERT_TRUE(inc_db->Insert(names[i], values[i]).ok());
  }

  DatabaseOptions batch_options;
  batch_options.directory = dir.path();
  batch_options.name = "bat";
  auto batch_db = Database::Create(batch_options).value();
  ASSERT_TRUE(batch_db
                  ->InsertBatch({names.begin(), names.begin() + 10},
                                {values.begin(), values.begin() + 10})
                  .ok());
  ASSERT_TRUE(batch_db->BuildIndex().ok());
  ASSERT_TRUE(batch_db
                  ->InsertBatch({names.begin() + 10, names.end()},
                                {values.begin() + 10, values.end()},
                                /*threads=*/4)
                  .ok());

  ASSERT_EQ(batch_db->index()->size(), inc_db->index()->size());
  for (size_t i = 0; i < names.size(); i += 3) {
    auto expected = inc_db->RangeQuery(values[i], 2.0);
    auto actual = batch_db->RangeQuery(values[i], 2.0);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(actual->size(), expected->size()) << "query " << i;
    for (size_t m = 0; m < expected->size(); ++m) {
      EXPECT_EQ((*actual)[m].id, (*expected)[m].id);
      EXPECT_EQ((*actual)[m].distance, (*expected)[m].distance);
    }
  }
}

TEST(DatabaseRecoveryTest, TornTailRecordIsDroppedAndIndexReopens) {
  // Crash story: a database with a built index accepts one more append,
  // which tears mid-record (crash between write and index persist). On
  // reopen the torn record is dropped, the relation shrinks back to what
  // the on-disk index covers, and the database opens cleanly.
  std::vector<std::string> names;
  std::vector<RealVec> values;
  MakeWorkload(14, &names, &values);

  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "crashy";
  {
    auto db = Database::Create(options).value();
    ASSERT_TRUE(db->InsertBatch(names, values).ok());
    ASSERT_TRUE(db->BuildIndex().ok());
    ASSERT_TRUE(db->Flush().ok());
  }

  // The "crashing appender": writes straight to the relation (the index
  // never hears of it), then the record is torn by truncation.
  const std::string rel_path = dir.path() + "/crashy.rel";
  const size_t torn_id = names.size();
  {
    auto rel = Relation::Open(rel_path).value();
    ASSERT_EQ(rel->size(), names.size());
    ASSERT_TRUE(rel->Append("torn", RealVec(kLength, 0.5),
                            ComplexVec(kLength))
                    .ok());
    ASSERT_TRUE(rel->Flush().ok());
  }
  // Before the tear: index (N entries) vs relation (N+1) is the
  // crash-between-swap shape, not corruption — Open rebuilds the tail
  // into the delta and serves it (docs/ARCHITECTURE.md).
  {
    auto recovered = Database::Open(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ((*recovered)->size(), names.size() + 1);
    EXPECT_EQ((*recovered)->StatsSnapshot().delta_entries, 1u);
    EXPECT_EQ((*recovered)->Get(torn_id).value().name, "torn");
  }

  const std::string torn_segment =
      rel_path + "." + std::to_string(torn_id % 4);
  const uint64_t size = std::filesystem::file_size(torn_segment);
  ASSERT_GT(size, 6u);
  std::filesystem::resize_file(torn_segment, size - 6);

  auto reopened = Database::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), names.size());
  ASSERT_TRUE((*reopened)->index_built());
  EXPECT_EQ((*reopened)->index()->size(), names.size());
  // All surviving ids are intact and queryable through the index.
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ((*reopened)->Get(i).value().name, names[i]);
  }
  auto matches = (*reopened)->RangeQuery(values[0], 0.001);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].id, 0u);
}

TEST(DatabaseRecoveryTest, ReopenedDatabaseContinuesDenseIngest) {
  std::vector<std::string> names;
  std::vector<RealVec> values;
  MakeWorkload(9, &names, &values);

  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.relation_segments = 3;
  {
    auto db = Database::Create(options).value();
    ASSERT_TRUE(db->InsertBatch(names, values, /*threads=*/2).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->relation()->num_segments(), 3u);
  auto more = (*db)->InsertBatch({"x", "y"}, {RealVec(kLength, 2.0),
                                              RealVec(kLength, 3.0)});
  ASSERT_TRUE(more.ok());
  EXPECT_EQ((*more)[0], names.size());
  EXPECT_EQ((*more)[1], names.size() + 1);
  EXPECT_EQ((*db)->size(), names.size() + 2);
}

}  // namespace
}  // namespace tsq
