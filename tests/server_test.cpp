// Copyright (c) 2026 The tsq Authors.
//
// The tsqd subsystem suite: wire-protocol round-trips for every verb,
// malformed-frame rejection (the server feeds the decoders untrusted
// bytes), end-to-end loopback equality — every remote verb must answer
// bit-identically to the in-process Database call it proxies, at every
// poller count — plus the concurrent multi-client stress, pipelined and
// split framing per poller count, a connection-churn stress, the BUSY
// backpressure path, the front-end failure modes (fd-exhaustion accept
// backoff, client timeouts on a hung server, immediate retirement of
// reset peers) and the drain-on-shutdown guarantee. The stress suites
// run under the CI TSan job: the poller threads, the execution pool and
// N client threads exercise the accept handoff inboxes, the connection
// write-buffer handoff and the admission counter together.

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "engine/query_engine.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace server {
namespace {

using engine::BatchQuery;
using engine::BatchQueryKind;
using engine::BatchResult;

constexpr size_t kNumSeries = 80;
constexpr size_t kLength = 64;
constexpr uint64_t kSeed = 20260729;

/// Opens a raw loopback TCP connection to `port`; -1 on failure.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Polls `pred` until it holds or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Reads reply frames off `fd` until `count` have decoded.
::testing::AssertionResult ReadReplies(int fd, size_t count,
                                       std::vector<Reply>* out) {
  FrameReader reader;
  uint8_t buf[64 * 1024];
  while (out->size() < count) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return ::testing::AssertionFailure()
             << "connection ended after " << out->size() << "/" << count
             << " replies";
    }
    Status status = reader.Feed(buf, static_cast<size_t>(n),
                                [out](const uint8_t* payload, size_t size) {
                                  Reply reply;
                                  TSQ_RETURN_IF_ERROR(
                                      DecodeReply(payload, size, &reply));
                                  out->push_back(std::move(reply));
                                  return Status::OK();
                                });
    if (!status.ok()) {
      return ::testing::AssertionFailure()
             << "reply stream corrupt: " << status.ToString();
    }
  }
  return ::testing::AssertionSuccess();
}

/// Encodes one single-query range request frame.
serde::Buffer EncodeRangeFrame(uint64_t id, const RealVec& query,
                               double epsilon) {
  Request request;
  request.verb = Verb::kQuery;
  request.id = id;
  BatchQuery q;
  q.kind = BatchQueryKind::kRange;
  q.query = query;
  q.epsilon = epsilon;
  request.queries.push_back(std::move(q));
  serde::Buffer frame;
  EncodeRequest(request, &frame);
  return frame;
}

// ---------------------------------------------------------------------------
// Protocol round-trips (no sockets).
// ---------------------------------------------------------------------------

QuerySpec MakeRichSpec() {
  QuerySpec spec;
  spec.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(kLength, 4));
  spec.mode = TransformMode::kDataOnly;
  spec.window = MeanStdWindow{-1.5, 2.5, 0.25, 4.0};
  return spec;
}

void ExpectSpecEq(const QuerySpec& actual, const QuerySpec& expected) {
  ASSERT_EQ(actual.transform.has_value(), expected.transform.has_value());
  if (expected.transform.has_value()) {
    EXPECT_EQ(actual.transform->spectral.a(), expected.transform->spectral.a());
    EXPECT_EQ(actual.transform->spectral.b(), expected.transform->spectral.b());
    EXPECT_EQ(actual.transform->spectral.cost(),
              expected.transform->spectral.cost());
    EXPECT_EQ(actual.transform->spectral.name(),
              expected.transform->spectral.name());
    EXPECT_EQ(actual.transform->mean_scale, expected.transform->mean_scale);
    EXPECT_EQ(actual.transform->mean_offset, expected.transform->mean_offset);
    EXPECT_EQ(actual.transform->std_scale, expected.transform->std_scale);
  }
  EXPECT_EQ(actual.mode, expected.mode);
  ASSERT_EQ(actual.window.has_value(), expected.window.has_value());
  if (expected.window.has_value()) {
    EXPECT_EQ(actual.window->mean_lo, expected.window->mean_lo);
    EXPECT_EQ(actual.window->mean_hi, expected.window->mean_hi);
    EXPECT_EQ(actual.window->std_lo, expected.window->std_lo);
    EXPECT_EQ(actual.window->std_hi, expected.window->std_hi);
  }
}

/// Feeds `frame` to a FrameReader in awkward 7-byte chunks and returns
/// the decoded payloads.
std::vector<serde::Buffer> ReassembleFrames(const serde::Buffer& frame) {
  FrameReader reader;
  std::vector<serde::Buffer> payloads;
  for (size_t off = 0; off < frame.size(); off += 7) {
    const size_t n = std::min<size_t>(7, frame.size() - off);
    Status status =
        reader.Feed(frame.data() + off, n,
                    [&payloads](const uint8_t* payload, size_t size) {
                      payloads.emplace_back(payload, payload + size);
                      return Status::OK();
                    });
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(reader.buffered(), 0u);
  return payloads;
}

Request RoundTripRequest(const Request& request) {
  serde::Buffer frame;
  EncodeRequest(request, &frame);
  std::vector<serde::Buffer> payloads = ReassembleFrames(frame);
  EXPECT_EQ(payloads.size(), 1u);
  Request out;
  Status status = DecodeRequest(payloads[0].data(), payloads[0].size(), &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

Reply RoundTripReply(const Reply& reply) {
  serde::Buffer frame;
  EncodeReply(reply, &frame);
  std::vector<serde::Buffer> payloads = ReassembleFrames(frame);
  EXPECT_EQ(payloads.size(), 1u);
  Reply out;
  Status status = DecodeReply(payloads[0].data(), payloads[0].size(), &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST(ProtocolTest, PingAndStatsRequestsRoundTrip) {
  for (Verb verb : {Verb::kPing, Verb::kStats, Verb::kReindex}) {
    Request request;
    request.verb = verb;
    request.id = 42;
    Request out = RoundTripRequest(request);
    EXPECT_EQ(out.verb, verb);
    EXPECT_EQ(out.id, 42u);
  }
}

TEST(ProtocolTest, QueryAndBatchRequestsRoundTrip) {
  Rng rng(kSeed);
  Request request;
  request.verb = Verb::kBatch;
  request.id = 7;
  BatchQuery range;
  range.kind = BatchQueryKind::kRange;
  range.query = testing::RandomRealVec(&rng, kLength);
  range.epsilon = 2.25;
  range.spec = MakeRichSpec();
  BatchQuery knn;
  knn.kind = BatchQueryKind::kKnn;
  knn.query = testing::RandomRealVec(&rng, kLength);
  knn.k = 9;
  BatchQuery sub;
  sub.kind = BatchQueryKind::kSubsequence;
  sub.query = testing::RandomRealVec(&rng, 16);
  sub.epsilon = 0.5;
  request.queries = {range, knn, sub};

  Request out = RoundTripRequest(request);
  EXPECT_EQ(out.verb, Verb::kBatch);
  EXPECT_EQ(out.id, 7u);
  ASSERT_EQ(out.queries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.queries[i].kind, request.queries[i].kind);
    EXPECT_EQ(out.queries[i].query, request.queries[i].query);
    EXPECT_EQ(out.queries[i].epsilon, request.queries[i].epsilon);
    EXPECT_EQ(out.queries[i].k, request.queries[i].k);
    ExpectSpecEq(out.queries[i].spec, request.queries[i].spec);
  }

  request.verb = Verb::kQuery;
  request.queries = {range};
  Request single = RoundTripRequest(request);
  ASSERT_EQ(single.queries.size(), 1u);
  EXPECT_EQ(single.queries[0].query, range.query);
}

TEST(ProtocolTest, InsertRequestRoundTrips) {
  Rng rng(kSeed + 1);
  Request request;
  request.verb = Verb::kInsert;
  request.id = 11;
  request.insert_names = {"alpha", "", "gamma"};
  request.insert_values = {testing::RandomRealVec(&rng, 8),
                           testing::RandomRealVec(&rng, 8), RealVec{}};
  Request out = RoundTripRequest(request);
  EXPECT_EQ(out.insert_names, request.insert_names);
  EXPECT_EQ(out.insert_values, request.insert_values);
}

TEST(ProtocolTest, SelfJoinRequestRoundTrips) {
  Request request;
  request.verb = Verb::kSelfJoin;
  request.id = 13;
  request.epsilon = 3.5;
  request.transform =
      FeatureTransform::Spectral(transforms::Reverse(kLength));
  Request out = RoundTripRequest(request);
  EXPECT_EQ(out.epsilon, 3.5);
  ASSERT_TRUE(out.transform.has_value());
  EXPECT_EQ(out.transform->spectral.a(), request.transform->spectral.a());
  EXPECT_EQ(out.transform->spectral.name(), "reverse");
}

TEST(ProtocolTest, RepliesRoundTripEveryShape) {
  // OK query reply with matches, subsequence matches and stats.
  Reply query_reply;
  query_reply.verb = Verb::kQuery;
  query_reply.id = 3;
  BatchResult result;
  result.matches = {{5, "SIMa", 1.25}, {9, "SIMb", 2.5}};
  result.subsequence_matches = {{2, 17, 0.75}};
  result.stats.candidates = 4;
  result.stats.verified = 2;
  result.stats.elapsed_ms = 1.5;
  query_reply.results.push_back(result);
  Reply out = RoundTripReply(query_reply);
  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_EQ(out.results[0].matches.size(), 2u);
  EXPECT_EQ(out.results[0].matches[1].name, "SIMb");
  EXPECT_EQ(out.results[0].matches[1].distance, 2.5);
  EXPECT_EQ(out.results[0].subsequence_matches[0].offset, 17u);
  EXPECT_EQ(out.results[0].stats.candidates, 4u);
  EXPECT_EQ(out.results[0].stats.elapsed_ms, 1.5);

  // Batch reply with a per-query error.
  Reply batch_reply;
  batch_reply.verb = Verb::kBatch;
  batch_reply.id = 4;
  BatchResult failed;
  failed.status = Status::InvalidArgument("query length 3 != index 64");
  batch_reply.results = {result, failed};
  out = RoundTripReply(batch_reply);
  ASSERT_EQ(out.results.size(), 2u);
  EXPECT_TRUE(out.results[1].status.IsInvalidArgument());
  EXPECT_EQ(out.results[1].status.message(), "query length 3 != index 64");

  // Insert reply.
  Reply insert_reply;
  insert_reply.verb = Verb::kInsert;
  insert_reply.id = 5;
  insert_reply.insert_base = 80;
  insert_reply.insert_count = 3;
  out = RoundTripReply(insert_reply);
  EXPECT_EQ(out.insert_base, 80u);
  EXPECT_EQ(out.insert_count, 3u);

  // Self-join reply.
  Reply join_reply;
  join_reply.verb = Verb::kSelfJoin;
  join_reply.id = 6;
  join_reply.pairs = {{1, 2, 0.5}, {2, 1, 0.5}};
  out = RoundTripReply(join_reply);
  ASSERT_EQ(out.pairs.size(), 2u);
  EXPECT_EQ(out.pairs[0].first, 1u);
  EXPECT_EQ(out.pairs[1].second, 1u);
  EXPECT_EQ(out.pairs[0].distance, 0.5);

  // Stats reply.
  Reply stats_reply;
  stats_reply.verb = Verb::kStats;
  stats_reply.id = 7;
  stats_reply.stats.series = 80;
  stats_reply.stats.index_built = true;
  stats_reply.stats.pool_hits = 123;
  stats_reply.stats.tree_height = 2;
  stats_reply.stats.index_epoch = 4;
  stats_reply.stats.delta_entries = 17;
  stats_reply.stats.merges_completed = 3;
  out = RoundTripReply(stats_reply);
  EXPECT_EQ(out.stats.series, 80u);
  EXPECT_TRUE(out.stats.index_built);
  EXPECT_EQ(out.stats.pool_hits, 123u);
  EXPECT_EQ(out.stats.tree_height, 2u);
  EXPECT_EQ(out.stats.index_epoch, 4u);
  EXPECT_EQ(out.stats.delta_entries, 17u);
  EXPECT_EQ(out.stats.merges_completed, 3u);

  // Reindex reply.
  Reply reindex_reply;
  reindex_reply.verb = Verb::kReindex;
  reindex_reply.id = 8;
  reindex_reply.reindex_epoch = 5;
  out = RoundTripReply(reindex_reply);
  EXPECT_EQ(out.verb, Verb::kReindex);
  EXPECT_EQ(out.reindex_epoch, 5u);

  // Error reply.
  Reply error_reply;
  error_reply.code = ReplyCode::kError;
  error_reply.verb = Verb::kQuery;
  error_reply.id = 8;
  error_reply.error = Status::FailedPrecondition("RunBatch requires index");
  out = RoundTripReply(error_reply);
  EXPECT_EQ(out.code, ReplyCode::kError);
  EXPECT_TRUE(out.error.IsFailedPrecondition());

  // Busy reply.
  Reply busy_reply;
  busy_reply.code = ReplyCode::kBusy;
  busy_reply.verb = Verb::kBatch;
  busy_reply.id = 9;
  out = RoundTripReply(busy_reply);
  EXPECT_EQ(out.code, ReplyCode::kBusy);
  EXPECT_EQ(out.id, 9u);
}

TEST(ProtocolTest, ApproxKnnOptionsRoundTripAndVersionGate) {
  Rng rng(kSeed + 2);
  Request request;
  request.verb = Verb::kQuery;
  request.id = 21;
  BatchQuery knn;
  knn.kind = BatchQueryKind::kKnn;
  knn.query = testing::RandomRealVec(&rng, kLength);
  knn.k = 7;
  request.queries = {knn};

  // Exact mode: the kind word carries no flag bit — byte-compatible with
  // the pre-extension wire format. The kind u32 sits at payload offset 12
  // (verb u32 + id u64); its second byte holds bits 8..15.
  serde::Buffer frame;
  EncodeRequest(request, &frame);
  ASSERT_GT(frame.size(), 16u + 16u);
  EXPECT_EQ(frame[16 + 13] & 0x01, 0);

  // Approximate mode: flag set, options round-trip exactly.
  request.queries[0].knn.epsilon = 0.25;
  request.queries[0].knn.probe_budget = 99;
  request.queries[0].knn.stop_after_first_leaf = true;
  frame.clear();
  EncodeRequest(request, &frame);
  EXPECT_EQ(frame[16 + 13] & 0x01, 1);
  Request out = RoundTripRequest(request);
  ASSERT_EQ(out.queries.size(), 1u);
  EXPECT_EQ(out.queries[0].knn.epsilon, 0.25);
  EXPECT_EQ(out.queries[0].knn.probe_budget, 99u);
  EXPECT_TRUE(out.queries[0].knn.stop_after_first_leaf);

  // A flagged payload whose options decode to all-default is a
  // non-canonical encoding: Corruption, not a silent second spelling of
  // the exact wire bytes. The options tail is the last 20 payload bytes
  // (epsilon f64 | probe u64 | first_leaf u32).
  request.queries[0].knn = KnnOptions{0.5, 0, false};
  frame.clear();
  EncodeRequest(request, &frame);
  serde::Buffer payload(frame.begin() + 16, frame.end());
  std::fill(payload.end() - 20, payload.end() - 12, uint8_t{0});
  Request rejected;
  EXPECT_TRUE(DecodeRequest(payload.data(), payload.size(), &rejected)
                  .IsCorruption());

  // The flag on a non-kNN kind is Corruption too: rewrite the kind value
  // byte (payload offset 12, low byte) from kKnn to kRange, flag kept.
  payload.assign(frame.begin() + 16, frame.end());
  payload[12] = static_cast<uint8_t>(BatchQueryKind::kRange);
  EXPECT_TRUE(DecodeRequest(payload.data(), payload.size(), &rejected)
                  .IsCorruption());

  // Unknown flag bits above the assigned one are Corruption (reserved
  // for future extensions; an old decoder must refuse, never misparse).
  payload.assign(frame.begin() + 16, frame.end());
  payload[14] |= 0x01;  // bit 16 of the kind word
  EXPECT_TRUE(DecodeRequest(payload.data(), payload.size(), &rejected)
                  .IsCorruption());
}

TEST(ProtocolTest, ApproxStatsReplyRoundTripAndVersionGate) {
  // A reply whose result ran approximate carries the extended stats tail,
  // gated by the flag on the reply code word.
  Reply reply;
  reply.verb = Verb::kQuery;
  reply.id = 22;
  BatchResult result;
  result.matches = {{5, "SIMa", 1.25}};
  result.stats.candidates = 12;
  result.stats.pruned = 188;
  result.stats.max_error = 0.125;
  result.stats.approx = true;
  reply.results.push_back(result);
  Reply out = RoundTripReply(reply);
  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_EQ(out.results[0].stats.pruned, 188u);
  EXPECT_EQ(out.results[0].stats.max_error, 0.125);
  EXPECT_TRUE(out.results[0].stats.approx);

  // Exact results encode the pre-extension reply layout: no flag bit on
  // the code word (payload offset 0), and the extended fields drop out.
  reply.results[0].stats.approx = false;
  serde::Buffer frame;
  EncodeReply(reply, &frame);
  EXPECT_EQ(frame[16 + 1] & 0x01, 0);
  out = RoundTripReply(reply);
  EXPECT_EQ(out.results[0].stats.pruned, 0u);
  EXPECT_EQ(out.results[0].stats.max_error, 0.0);

  // The flag on a verb that carries no query stats is Corruption.
  Reply ping;
  ping.verb = Verb::kPing;
  ping.id = 23;
  frame.clear();
  EncodeReply(ping, &frame);
  serde::Buffer payload(frame.begin() + 16, frame.end());
  payload[1] |= 0x01;  // set bit 8 of the code word
  Reply rejected;
  EXPECT_TRUE(
      DecodeReply(payload.data(), payload.size(), &rejected).IsCorruption());
}

TEST(ProtocolTest, PipelinedFramesDecodeInOneFeed) {
  Request a;
  a.verb = Verb::kPing;
  a.id = 1;
  Request b;
  b.verb = Verb::kStats;
  b.id = 2;
  serde::Buffer stream;
  EncodeRequest(a, &stream);
  EncodeRequest(b, &stream);
  FrameReader reader;
  std::vector<uint64_t> ids;
  Status status = reader.Feed(
      stream.data(), stream.size(),
      [&ids](const uint8_t* payload, size_t size) {
        Request request;
        TSQ_RETURN_IF_ERROR(DecodeRequest(payload, size, &request));
        ids.push_back(request.id);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2}));
}

TEST(ProtocolTest, FrameReaderRejectsBadMagicAndStaysPoisoned) {
  FrameReader reader;
  serde::Buffer junk(32, 0xAB);
  auto sink = [](const uint8_t*, size_t) { return Status::OK(); };
  EXPECT_TRUE(reader.Feed(junk.data(), junk.size(), sink).IsCorruption());
  // Even a now-valid frame is refused: framing trust is gone.
  serde::Buffer frame;
  Request request;
  request.verb = Verb::kPing;
  EncodeRequest(request, &frame);
  EXPECT_TRUE(reader.Feed(frame.data(), frame.size(), sink).IsCorruption());
}

TEST(ProtocolTest, FrameReaderRejectsCrcMismatch) {
  Request request;
  request.verb = Verb::kStats;
  request.id = 3;
  serde::Buffer frame;
  EncodeRequest(request, &frame);
  frame.back() ^= 0xFF;  // flip one payload byte under the CRC
  FrameReader reader;
  auto sink = [](const uint8_t*, size_t) { return Status::OK(); };
  EXPECT_TRUE(reader.Feed(frame.data(), frame.size(), sink).IsCorruption());
}

TEST(ProtocolTest, FrameReaderRejectsOversizedDeclaredPayload) {
  serde::Buffer frame;
  serde::PutU32(&frame, kFrameMagic);
  serde::PutU32(&frame, 0);
  serde::PutU64(&frame, uint64_t{1} << 40);  // 1 TiB claim, no bytes behind it
  FrameReader reader(/*max_payload=*/1 << 20);
  auto sink = [](const uint8_t*, size_t) { return Status::OK(); };
  Status status = reader.Feed(frame.data(), frame.size(), sink);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST(ProtocolTest, TruncatedFrameWaitsForMoreBytes) {
  Request request;
  request.verb = Verb::kStats;
  request.id = 5;
  serde::Buffer frame;
  EncodeRequest(request, &frame);
  FrameReader reader;
  size_t decoded = 0;
  auto sink = [&decoded](const uint8_t*, size_t) {
    ++decoded;
    return Status::OK();
  };
  ASSERT_TRUE(reader.Feed(frame.data(), frame.size() - 1, sink).ok());
  EXPECT_EQ(decoded, 0u);
  EXPECT_GT(reader.buffered(), 0u);
  ASSERT_TRUE(reader.Feed(frame.data() + frame.size() - 1, 1, sink).ok());
  EXPECT_EQ(decoded, 1u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ProtocolTest, DecodeRejectsTrailingGarbageAndBadEnums) {
  // Trailing garbage after a valid ping body.
  serde::Buffer payload;
  serde::PutU32(&payload, static_cast<uint32_t>(Verb::kPing));
  serde::PutU64(&payload, 1);
  serde::PutU32(&payload, 0xDEAD);
  Request request;
  EXPECT_TRUE(
      DecodeRequest(payload.data(), payload.size(), &request).IsCorruption());

  // Unknown verb.
  payload.clear();
  serde::PutU32(&payload, 99);
  serde::PutU64(&payload, 1);
  EXPECT_TRUE(
      DecodeRequest(payload.data(), payload.size(), &request).IsCorruption());

  // Transform whose a/b vectors disagree must decode to Corruption, not
  // trip LinearTransform's invariant abort.
  payload.clear();
  serde::PutU32(&payload, static_cast<uint32_t>(Verb::kSelfJoin));
  serde::PutU64(&payload, 2);
  serde::PutDouble(&payload, 1.0);
  serde::PutU32(&payload, 1);                      // has transform
  serde::PutComplexVec(&payload, ComplexVec(4));   // a: 4 elements
  serde::PutComplexVec(&payload, ComplexVec(3));   // b: 3 elements
  serde::PutDouble(&payload, 0.0);
  serde::PutString(&payload, "bad");
  serde::PutDouble(&payload, 1.0);
  serde::PutDouble(&payload, 0.0);
  serde::PutDouble(&payload, 1.0);
  Status status = DecodeRequest(payload.data(), payload.size(), &request);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();

  // A hostile vector length that would overflow a naive bounds check.
  payload.clear();
  serde::PutU32(&payload, static_cast<uint32_t>(Verb::kInsert));
  serde::PutU64(&payload, 3);
  serde::PutU64(&payload, 1);          // one record
  serde::PutString(&payload, "evil");
  serde::PutU64(&payload, uint64_t{1} << 61);  // claimed vector length
  status = DecodeRequest(payload.data(), payload.size(), &request);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

// ---------------------------------------------------------------------------
// End-to-end loopback.
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = workload::MakeRandomWalkDataset(kSeed, kNumSeries, kLength);
    DatabaseOptions options;
    options.directory = dir_.path();
    options.name = "served";
    options.buffer_pool_frames = 64;
    options.buffer_pool_shards = 4;
    db_ = Database::Create(options).value();
    std::vector<std::string> names;
    std::vector<RealVec> values;
    for (const TimeSeries& s : data_) {
      names.push_back(s.name());
      values.push_back(s.values());
    }
    ASSERT_TRUE(db_->InsertBatch(names, values, 2).ok());
    ASSERT_TRUE(db_->BuildIndex().ok());
  }

  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    options.engine_threads = 2;
    auto server = Server::Start(db_.get(), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  std::unique_ptr<Client> Connect(const Server& server) {
    auto client = Client::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  /// The mixed seeded workload of the stress suites: stored + perturbed
  /// queries, plain and transformed specs, range and kNN.
  std::vector<BatchQuery> MakeBatch(size_t count, uint64_t salt) const {
    Rng rng(kSeed + salt);
    QuerySpec smoothed;
    smoothed.transform =
        FeatureTransform::Spectral(transforms::MovingAverage(kLength, 4));
    std::vector<BatchQuery> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      BatchQuery q;
      RealVec values = data_[(i * 17 + salt) % kNumSeries].values();
      if (i % 3 == 1) {
        for (double& v : values) v += rng.Uniform(-0.5, 0.5);
      }
      q.query = std::move(values);
      if (i % 4 == 2) {
        q.kind = BatchQueryKind::kKnn;
        q.k = 1 + i % 5;
      } else {
        q.kind = BatchQueryKind::kRange;
        q.epsilon = (i % 2 == 0) ? 2.0 : 6.0;
      }
      if (i % 5 == 3) q.spec = smoothed;
      batch.push_back(std::move(q));
    }
    return batch;
  }

  static void ExpectResultsEq(const std::vector<BatchResult>& actual,
                              const std::vector<BatchResult>& expected,
                              const std::string& what) {
    ASSERT_EQ(actual.size(), expected.size()) << what;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].status.code(), expected[i].status.code())
          << what << " query " << i;
      EXPECT_EQ(actual[i].status.message(), expected[i].status.message())
          << what << " query " << i;
      ASSERT_EQ(actual[i].matches.size(), expected[i].matches.size())
          << what << " query " << i;
      for (size_t m = 0; m < expected[i].matches.size(); ++m) {
        EXPECT_EQ(actual[i].matches[m].id, expected[i].matches[m].id)
            << what << " query " << i << " match " << m;
        EXPECT_EQ(actual[i].matches[m].name, expected[i].matches[m].name)
            << what << " query " << i << " match " << m;
        EXPECT_EQ(actual[i].matches[m].distance,
                  expected[i].matches[m].distance)
            << what << " query " << i << " match " << m;
      }
    }
  }

  testing::TempDir dir_;
  std::vector<TimeSeries> data_;
  std::unique_ptr<Database> db_;
};

TEST_F(ServerTest, PingAndStats) {
  ServerOptions options;
  options.workers = 2;
  auto server = StartServer(options);
  auto client = Connect(*server);
  ASSERT_TRUE(client->Ping().ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->series, kNumSeries);
  EXPECT_EQ(stats->series_length, kLength);
  EXPECT_TRUE(stats->index_built);
  EXPECT_GT(stats->tree_entries, 0u);

  const DatabaseStats local = db_->StatsSnapshot();
  EXPECT_EQ(stats->series, local.series);
  EXPECT_EQ(stats->tree_entries, local.tree_entries);
  EXPECT_EQ(stats->tree_height, local.tree_height);
  EXPECT_EQ(stats->tree_dims, local.tree_dims);
  EXPECT_EQ(stats->index_epoch, local.index_epoch);
  EXPECT_EQ(stats->delta_entries, local.delta_entries);
  EXPECT_EQ(stats->merges_completed, local.merges_completed);
}

TEST_F(ServerTest, RemoteQueriesMatchInProcess) {
  ServerOptions options;
  options.workers = 2;
  auto server = StartServer(options);
  auto client = Connect(*server);

  QuerySpec smoothed;
  smoothed.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(kLength, 4));
  for (size_t i = 0; i < 6; ++i) {
    const RealVec& query = data_[i * 11 % kNumSeries].values();
    const QuerySpec& spec = (i % 2 == 0) ? QuerySpec{} : smoothed;

    auto remote_range = client->Range(query, 4.0, spec);
    auto local_range = db_->RangeQuery(query, 4.0, spec);
    ASSERT_TRUE(remote_range.ok() && local_range.ok());
    ASSERT_EQ(remote_range->size(), local_range->size());
    for (size_t m = 0; m < local_range->size(); ++m) {
      EXPECT_EQ((*remote_range)[m].id, (*local_range)[m].id);
      EXPECT_EQ((*remote_range)[m].name, (*local_range)[m].name);
      EXPECT_EQ((*remote_range)[m].distance, (*local_range)[m].distance);
    }

    auto remote_knn = client->Knn(query, 3, spec);
    auto local_knn = db_->Knn(query, 3, spec);
    ASSERT_TRUE(remote_knn.ok() && local_knn.ok());
    ASSERT_EQ(remote_knn->size(), local_knn->size());
    for (size_t m = 0; m < local_knn->size(); ++m) {
      EXPECT_EQ((*remote_knn)[m].id, (*local_knn)[m].id);
      EXPECT_EQ((*remote_knn)[m].distance, (*local_knn)[m].distance);
    }
  }
}

TEST_F(ServerTest, RemoteBatchMatchesInProcess) {
  ServerOptions options;
  options.workers = 2;
  auto server = StartServer(options);
  auto client = Connect(*server);

  const std::vector<BatchQuery> batch = MakeBatch(24, 0);
  auto remote = client->RunBatch(batch);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto local = db_->RunBatch(batch, 1);
  ASSERT_TRUE(local.ok());
  ExpectResultsEq(*remote, *local, "batch");
}

TEST_F(ServerTest, RemoteErrorsMatchInProcess) {
  auto server = StartServer();
  auto client = Connect(*server);

  // Wrong query length: the per-query status must relay verbatim.
  const RealVec short_query(3, 1.0);
  auto remote = client->Range(short_query, 1.0);
  auto local = db_->RunBatch(
      {BatchQuery{BatchQueryKind::kRange, short_query, 1.0, 0, {}, {}}}, 1);
  ASSERT_TRUE(local.ok());
  ASSERT_FALSE(remote.ok());
  EXPECT_EQ(remote.status().code(), (*local)[0].status.code());
  EXPECT_EQ(remote.status().message(), (*local)[0].status.message());

  // Subsequence queries: the Database serves none (no ST-index), and the
  // remote answer must be the same refusal the in-process batch gives.
  auto remote_sub = client->Subsequence(RealVec(8, 0.0), 1.0);
  auto local_sub = db_->RunBatch(
      {BatchQuery{BatchQueryKind::kSubsequence, RealVec(8, 0.0), 1.0, 0, {},
                  {}}},
      1);
  ASSERT_TRUE(local_sub.ok());
  ASSERT_FALSE(remote_sub.ok());
  EXPECT_EQ(remote_sub.status().code(), (*local_sub)[0].status.code());
  EXPECT_EQ(remote_sub.status().message(), (*local_sub)[0].status.message());
}

TEST_F(ServerTest, RemoteSelfJoinMatchesInProcess) {
  ServerOptions options;
  options.workers = 2;
  auto server = StartServer(options);
  auto client = Connect(*server);

  for (const std::optional<FeatureTransform>& transform :
       {std::optional<FeatureTransform>{},
        std::optional<FeatureTransform>{FeatureTransform::Spectral(
            transforms::MovingAverage(kLength, 4))}}) {
    auto remote = client->SelfJoin(4.0, transform);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto local = db_->ParallelSelfJoin(4.0, transform, 1);
    ASSERT_TRUE(local.ok());
    ASSERT_EQ(remote->size(), local->size());
    for (size_t i = 0; i < local->size(); ++i) {
      EXPECT_EQ((*remote)[i].first, (*local)[i].first);
      EXPECT_EQ((*remote)[i].second, (*local)[i].second);
      EXPECT_EQ((*remote)[i].distance, (*local)[i].distance);
    }
  }
}

TEST_F(ServerTest, RemoteInsertMatchesInProcessAndIsQueryable) {
  auto server = StartServer();
  auto client = Connect(*server);

  Rng rng(kSeed + 99);
  std::vector<std::string> names;
  std::vector<RealVec> values;
  for (size_t i = 0; i < 6; ++i) {
    names.push_back("remote_" + std::to_string(i));
    values.push_back(testing::RandomRealVec(&rng, kLength));
  }
  auto ids = client->InsertBatch(names, values);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), names.size());
  EXPECT_EQ((*ids)[0], kNumSeries);  // dense ids continue the sequence
  EXPECT_EQ(db_->size(), kNumSeries + names.size());

  // The inserted series are immediately indexed and query-visible.
  for (size_t i = 0; i < names.size(); ++i) {
    auto rec = db_->Get((*ids)[i]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->name, names[i]);
    EXPECT_EQ(rec->values, values[i]);
    auto matches = client->Range(values[i], 1e-9);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    EXPECT_EQ((*matches)[0].id, (*ids)[i]);
  }

  // A batch rejected remotely leaves the database untouched, exactly as
  // the in-process call does.
  auto bad = client->InsertBatch({"too_short"}, {RealVec(3, 1.0)});
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(db_->size(), kNumSeries + names.size());
}

TEST_F(ServerTest, RemoteReindexFoldsDeltaAndKeepsAnswers) {
  auto server = StartServer();
  auto client = Connect(*server);

  // Seed some unmerged entries through the remote insert path.
  Rng rng(kSeed + 123);
  std::vector<std::string> names;
  std::vector<RealVec> values;
  for (size_t i = 0; i < 5; ++i) {
    names.push_back("unmerged_" + std::to_string(i));
    values.push_back(testing::RandomRealVec(&rng, kLength));
  }
  auto ids = client->InsertBatch(names, values);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  auto before = client->Stats();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->delta_entries, names.size());

  // Answers to compare across the merge.
  auto pre = client->Range(values[2], 1e-9);
  ASSERT_TRUE(pre.ok());

  auto epoch = client->Reindex();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_GT(*epoch, before->index_epoch);

  auto after = client->Stats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->delta_entries, 0u);
  EXPECT_EQ(after->tree_entries, kNumSeries + names.size());
  EXPECT_EQ(after->index_epoch, *epoch);
  EXPECT_GT(after->merges_completed, before->merges_completed);

  auto post = client->Range(values[2], 1e-9);
  ASSERT_TRUE(post.ok());
  ASSERT_EQ(post->size(), pre->size());
  for (size_t m = 0; m < pre->size(); ++m) {
    EXPECT_EQ((*post)[m].id, (*pre)[m].id);
    EXPECT_EQ((*post)[m].distance, (*pre)[m].distance);
  }

  // A reindex with nothing to fold is a cheap no-op on the same epoch.
  auto again = client->Reindex();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *epoch);
}

TEST_F(ServerTest, MalformedPayloadGetsErrorReplyAndConnectionSurvives) {
  auto server = StartServer();

  // Raw socket: send a CRC-valid frame whose payload decodes to garbage.
  auto client = Connect(*server);
  serde::Buffer payload;
  serde::PutU32(&payload, static_cast<uint32_t>(Verb::kPing));
  serde::PutU64(&payload, 21);
  serde::PutU32(&payload, 7);  // trailing garbage: semantic decode fails
  serde::Buffer frame;
  serde::PutU32(&frame, kFrameMagic);
  serde::PutU32(&frame, serde::Crc32(payload));
  serde::PutU64(&frame, payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());

  // Smuggle the bad frame through a second raw connection.
  const int fd = RawConnect(server->port());
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  // The reply must be an ERROR frame, not a dropped connection.
  FrameReader reader;
  Reply reply;
  bool have_reply = false;
  uint8_t buf[4096];
  while (!have_reply) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server dropped a recoverable connection";
    ASSERT_TRUE(reader
                    .Feed(buf, static_cast<size_t>(n),
                          [&](const uint8_t* p, size_t size) {
                            TSQ_RETURN_IF_ERROR(DecodeReply(p, size, &reply));
                            have_reply = true;
                            return Status::OK();
                          })
                    .ok());
  }
  EXPECT_EQ(reply.code, ReplyCode::kError);
  EXPECT_EQ(reply.id, 21u);
  EXPECT_TRUE(reply.error.IsCorruption());
  ::close(fd);

  // The first (well-behaved) connection is unaffected.
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GE(server->counters().protocol_errors, 1u);
}

TEST_F(ServerTest, BrokenFramingClosesConnection) {
  auto server = StartServer();
  const int fd = RawConnect(server->port());
  ASSERT_GE(fd, 0);
  const serde::Buffer junk(64, 0x5A);  // wrong magic: framing unrecoverable
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(junk.size()));
  uint8_t buf[64];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // blocks until close
  EXPECT_EQ(n, 0) << "expected EOF after framing violation";
  ::close(fd);
  EXPECT_GE(server->counters().protocol_errors, 1u);
}

TEST_F(ServerTest, ConcurrentClientsMatchGroundTruthAtEveryWorkerCount) {
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 18;

  // Ground truth once, in-process, single-threaded.
  std::vector<std::vector<BatchResult>> expected;
  for (size_t c = 0; c < kClients; ++c) {
    auto local = db_->RunBatch(MakeBatch(kQueriesPerClient, c), 1);
    ASSERT_TRUE(local.ok());
    expected.push_back(std::move(*local));
  }

  for (size_t workers : {size_t{1}, size_t{4}}) {
    ServerOptions options;
    options.workers = workers;
    auto server = StartServer(options);

    std::vector<std::thread> threads;
    std::vector<Status> client_status(kClients);
    std::vector<std::vector<BatchResult>> got(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = Client::Connect("127.0.0.1", server->port());
        if (!client.ok()) {
          client_status[c] = client.status();
          return;
        }
        // Mix batched and single-query traffic per client.
        auto batch = (*client)->RunBatch(MakeBatch(kQueriesPerClient, c));
        if (!batch.ok()) {
          client_status[c] = batch.status();
          return;
        }
        got[c] = std::move(*batch);
        client_status[c] = (*client)->Ping();
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t c = 0; c < kClients; ++c) {
      ASSERT_TRUE(client_status[c].ok())
          << "client " << c << " with " << workers
          << " workers: " << client_status[c].ToString();
      ExpectResultsEq(got[c], expected[c],
                      "client " + std::to_string(c) + " workers " +
                          std::to_string(workers));
    }
    const ServerCounters counters = server->counters();
    EXPECT_EQ(counters.connections_accepted, kClients);
    EXPECT_EQ(counters.busy_rejected, 0u);
    EXPECT_EQ(counters.requests_executed, kClients);  // one batch each
  }
}

TEST_F(ServerTest, AdmissionQueueFullRepliesBusy) {
  // One worker, admission bound 1, and a gate that parks the worker in
  // the first request: the second request must bounce with BUSY before
  // any engine work, and pings must still answer inline.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool entered = false;
  bool release = false;

  ServerOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  auto server = StartServer(options);
  server->SetExecutionHookForTesting([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  });

  auto blocked = Connect(*server);
  auto bounced = Connect(*server);

  std::thread slow([&] {
    auto matches = blocked->Range(data_[0].values(), 2.0);
    EXPECT_TRUE(matches.ok()) << matches.status().ToString();
  });
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return entered; });
  }

  // The admitted request is parked on the only worker with inflight == 1.
  auto rejected = bounced->Range(data_[1].values(), 2.0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable())
      << rejected.status().ToString();
  EXPECT_TRUE(bounced->Ping().ok()) << "pings must bypass admission";

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  slow.join();

  // With the worker free again the retry succeeds.
  auto retried = bounced->Range(data_[1].values(), 2.0);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(server->counters().busy_rejected, 1u);
}

TEST_F(ServerTest, StopDrainsInFlightQueries) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool entered = false;
  bool release = false;

  ServerOptions options;
  options.workers = 1;
  auto server = StartServer(options);
  server->SetExecutionHookForTesting([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  });

  auto client = Connect(*server);
  Result<std::vector<Match>> matches = Status::Internal("not yet run");
  std::thread querier([&] { matches = client->Range(data_[0].values(), 4.0); });
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return entered; });
  }

  // Stop must block until the admitted query drains — release the gate
  // from a side thread after Stop is underway.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
    gate_cv.notify_all();
  });
  server->Stop();
  releaser.join();
  querier.join();

  // The in-flight query's reply arrived despite the shutdown.
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  auto expected = db_->RangeQuery(data_[0].values(), 4.0);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(matches->size(), expected->size());

  // And the server really is gone.
  auto reconnect = Client::Connect("127.0.0.1", server->port());
  if (reconnect.ok()) {
    EXPECT_FALSE((*reconnect)->Ping().ok());
  }
}

// ---------------------------------------------------------------------------
// Multi-poller front end.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, LoopbackEqualityAtEveryPollerCount) {
  constexpr size_t kClients = 5;
  constexpr size_t kQueriesPerClient = 12;

  for (size_t pollers : {size_t{1}, size_t{2}, size_t{4}}) {
    ServerOptions options;
    options.pollers = pollers;
    options.workers = 2;
    auto server = StartServer(options);
    ASSERT_EQ(server->pollers(), pollers);

    // Ground truth is recomputed every iteration: the insert block below
    // grows the database between poller counts.
    std::vector<std::vector<BatchResult>> expected;
    for (size_t c = 0; c < kClients; ++c) {
      auto local = db_->RunBatch(MakeBatch(kQueriesPerClient, c), 1);
      ASSERT_TRUE(local.ok());
      expected.push_back(std::move(*local));
    }

    // Concurrent clients land on different pollers (round-robin) and
    // must each see exactly the single-threaded in-process answers.
    std::vector<std::thread> threads;
    std::vector<Status> client_status(kClients);
    std::vector<std::vector<BatchResult>> got(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = Client::Connect("127.0.0.1", server->port());
        if (!client.ok()) {
          client_status[c] = client.status();
          return;
        }
        auto batch = (*client)->RunBatch(MakeBatch(kQueriesPerClient, c));
        if (!batch.ok()) {
          client_status[c] = batch.status();
          return;
        }
        got[c] = std::move(*batch);
        client_status[c] = (*client)->Ping();
      });
    }
    for (std::thread& t : threads) t.join();
    const std::string what = "pollers " + std::to_string(pollers);
    for (size_t c = 0; c < kClients; ++c) {
      ASSERT_TRUE(client_status[c].ok())
          << what << " client " << c << ": " << client_status[c].ToString();
      ExpectResultsEq(got[c], expected[c],
                      what + " client " + std::to_string(c));
    }

    // Every other verb through one more client on the same server.
    auto client = Connect(*server);

    const RealVec& probe = data_[3].values();
    auto remote_knn = client->Knn(probe, 4);
    auto local_knn = db_->Knn(probe, 4);
    ASSERT_TRUE(remote_knn.ok() && local_knn.ok()) << what;
    ASSERT_EQ(remote_knn->size(), local_knn->size()) << what;
    for (size_t m = 0; m < local_knn->size(); ++m) {
      EXPECT_EQ((*remote_knn)[m].id, (*local_knn)[m].id) << what;
      EXPECT_EQ((*remote_knn)[m].distance, (*local_knn)[m].distance) << what;
    }

    auto remote_join = client->SelfJoin(3.0, std::nullopt);
    auto local_join = db_->ParallelSelfJoin(3.0, std::nullopt, 1);
    ASSERT_TRUE(remote_join.ok() && local_join.ok()) << what;
    ASSERT_EQ(remote_join->size(), local_join->size()) << what;
    for (size_t i = 0; i < local_join->size(); ++i) {
      EXPECT_EQ((*remote_join)[i].first, (*local_join)[i].first) << what;
      EXPECT_EQ((*remote_join)[i].second, (*local_join)[i].second) << what;
      EXPECT_EQ((*remote_join)[i].distance, (*local_join)[i].distance)
          << what;
    }

    auto stats = client->Stats();
    ASSERT_TRUE(stats.ok()) << what << ": " << stats.status().ToString();
    const DatabaseStats local_stats = db_->StatsSnapshot();
    EXPECT_EQ(stats->series, local_stats.series) << what;
    EXPECT_EQ(stats->tree_entries, local_stats.tree_entries) << what;
    EXPECT_EQ(stats->index_epoch, local_stats.index_epoch) << what;
    EXPECT_EQ(stats->delta_entries, local_stats.delta_entries) << what;

    // Inserts (names unique per iteration) assign dense ids and are
    // immediately visible in the shared database.
    Rng rng(kSeed + 500 + pollers);
    std::vector<std::string> names;
    std::vector<RealVec> values;
    for (size_t i = 0; i < 3; ++i) {
      names.push_back("p" + std::to_string(pollers) + "_" +
                      std::to_string(i));
      values.push_back(testing::RandomRealVec(&rng, kLength));
    }
    const size_t size_before = db_->size();
    auto ids = client->InsertBatch(names, values);
    ASSERT_TRUE(ids.ok()) << what << ": " << ids.status().ToString();
    ASSERT_EQ(ids->size(), names.size()) << what;
    EXPECT_EQ((*ids)[0], size_before) << what;
    for (size_t i = 0; i < names.size(); ++i) {
      auto rec = db_->Get((*ids)[i]);
      ASSERT_TRUE(rec.ok()) << what;
      EXPECT_EQ(rec->name, names[i]) << what;
      EXPECT_EQ(rec->values, values[i]) << what;
    }

    auto epoch = client->Reindex();
    ASSERT_TRUE(epoch.ok()) << what << ": " << epoch.status().ToString();
    EXPECT_EQ(db_->StatsSnapshot().index_epoch, *epoch) << what;

    // Error statuses relay verbatim at every poller count too.
    auto remote_sub = client->Subsequence(RealVec(8, 0.0), 1.0);
    auto local_sub = db_->RunBatch(
        {BatchQuery{BatchQueryKind::kSubsequence, RealVec(8, 0.0), 1.0, 0,
                    {}, {}}},
        1);
    ASSERT_TRUE(local_sub.ok()) << what;
    ASSERT_FALSE(remote_sub.ok()) << what;
    EXPECT_EQ(remote_sub.status().code(), (*local_sub)[0].status.code())
        << what;
    EXPECT_EQ(remote_sub.status().message(), (*local_sub)[0].status.message())
        << what;
  }
}

TEST_F(ServerTest, PipelinedFramesInOneSendAllAnswer) {
  constexpr size_t kFrames = 6;
  for (size_t pollers : {size_t{1}, size_t{2}, size_t{4}}) {
    ServerOptions options;
    options.pollers = pollers;
    options.workers = 2;
    auto server = StartServer(options);

    // Many requests in one send(): the poller's FrameReader must slice
    // them apart from a single recv and admit each one.
    serde::Buffer stream;
    std::map<uint64_t, std::pair<RealVec, double>> outstanding;
    for (size_t i = 0; i < kFrames; ++i) {
      const uint64_t id = 100 + i;
      const RealVec& query = data_[(i * 7) % kNumSeries].values();
      const double epsilon = (i % 2 == 0) ? 2.0 : 5.0;
      const serde::Buffer frame = EncodeRangeFrame(id, query, epsilon);
      stream.insert(stream.end(), frame.begin(), frame.end());
      outstanding.emplace(id, std::make_pair(query, epsilon));
    }
    const int fd = RawConnect(server->port());
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::send(fd, stream.data(), stream.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(stream.size()));

    // Requests complete out of order across workers; match by id.
    std::vector<Reply> replies;
    ASSERT_TRUE(ReadReplies(fd, kFrames, &replies))
        << "pollers " << pollers;
    ::close(fd);
    for (const Reply& reply : replies) {
      auto it = outstanding.find(reply.id);
      ASSERT_NE(it, outstanding.end())
          << "pollers " << pollers << ": duplicate or unknown reply id "
          << reply.id;
      EXPECT_EQ(reply.code, ReplyCode::kOk);
      auto expected = db_->RangeQuery(it->second.first, it->second.second);
      ASSERT_TRUE(expected.ok());
      ASSERT_EQ(reply.results.size(), 1u);
      ASSERT_EQ(reply.results[0].matches.size(), expected->size());
      for (size_t m = 0; m < expected->size(); ++m) {
        EXPECT_EQ(reply.results[0].matches[m].id, (*expected)[m].id);
        EXPECT_EQ(reply.results[0].matches[m].distance,
                  (*expected)[m].distance);
      }
      outstanding.erase(it);
    }
    EXPECT_TRUE(outstanding.empty()) << "pollers " << pollers;
  }
}

TEST_F(ServerTest, FrameSplitAcrossManySendsDecodes) {
  for (size_t pollers : {size_t{1}, size_t{2}}) {
    ServerOptions options;
    options.pollers = pollers;
    auto server = StartServer(options);
    const int fd = RawConnect(server->port());
    ASSERT_GE(fd, 0);

    // One frame dribbled out in 16-byte chunks: the reader must buffer
    // across many recv calls before the single request materializes.
    const RealVec& query = data_[5].values();
    const serde::Buffer frame = EncodeRangeFrame(77, query, 3.0);
    for (size_t off = 0; off < frame.size(); off += 16) {
      const size_t n = std::min<size_t>(16, frame.size() - off);
      ASSERT_EQ(::send(fd, frame.data() + off, n, MSG_NOSIGNAL),
                static_cast<ssize_t>(n));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<Reply> replies;
    ASSERT_TRUE(ReadReplies(fd, 1, &replies)) << "pollers " << pollers;
    ::close(fd);
    EXPECT_EQ(replies[0].id, 77u);
    EXPECT_EQ(replies[0].code, ReplyCode::kOk);
    auto expected = db_->RangeQuery(query, 3.0);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(replies[0].results.size(), 1u);
    EXPECT_EQ(replies[0].results[0].matches.size(), expected->size());
  }
}

TEST_F(ServerTest, ConnectionChurnStress) {
  ServerOptions options;
  options.pollers = 2;
  options.workers = 2;
  auto server = StartServer(options);

  // Hundreds of short-lived connections across threads: exercises the
  // accept handoff inboxes and the retire pass under TSan.
  constexpr size_t kThreads = 4;
  constexpr size_t kConnsPerThread = 50;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kConnsPerThread; ++i) {
        auto client = Client::Connect("127.0.0.1", server->port());
        if (!client.ok()) {
          failures.fetch_add(1);
          continue;
        }
        Status status = (*client)->Ping();
        if (status.ok() && i % 8 == 3) {
          status =
              (*client)
                  ->Range(data_[(t * 13 + i) % kNumSeries].values(), 2.0)
                  .status();
        }
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);

  constexpr size_t kTotal = kThreads * kConnsPerThread;
  EXPECT_EQ(server->counters().connections_accepted, kTotal);
  // Retirement is asynchronous to the client-side close.
  EXPECT_TRUE(WaitUntil(
      [&] { return server->counters().connections_closed >= kTotal; }))
      << server->counters().connections_closed << " of " << kTotal
      << " connections retired";
}

// ---------------------------------------------------------------------------
// Front-end failure modes.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, FdExhaustionPausesAcceptAndRecovers) {
  ServerOptions options;
  options.pollers = 1;
  auto server = StartServer(options);

  // A control connection established while fds are plentiful.
  auto control = Connect(*server);
  ASSERT_TRUE(control->Ping().ok());

  // Create the starved peer's socket BEFORE exhausting fds — rlimit only
  // constrains new allocations, existing fds keep working. The limit
  // must stay above the poller's poll() set size (poll rejects
  // nfds > RLIMIT_NOFILE with EINVAL), so lower it moderately and then
  // occupy every free slot below it.
  const int starved = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(starved, 0);
  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  rlimit small = old_limit;
  small.rlim_cur = 256;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &small), 0);
  std::vector<int> hogs;
  for (;;) {
    const int hog = ::open("/dev/null", O_RDONLY);
    if (hog < 0) break;
    hogs.push_back(hog);
  }
  ASSERT_EQ(errno, EMFILE);
  ASSERT_FALSE(hogs.empty());

  // The TCP handshake completes in the kernel backlog regardless; the
  // server's accept4 fails with EMFILE.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(starved, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);

  // The un-fixed server spun on the permanently-readable listener —
  // thousands of accept attempts in this window. The fixed one pauses
  // the listener for kAcceptBackoffMs per failed attempt, so the episode
  // count is bounded by the window length.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const uint64_t backoffs = server->counters().accept_backoffs;
  EXPECT_GE(backoffs, 1u);
  EXPECT_LE(backoffs, 300 / kAcceptBackoffMs + 4);

  // Existing connections keep answering throughout the exhaustion.
  EXPECT_TRUE(control->Ping().ok());

  for (int hog : hogs) ::close(hog);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);
  // With fds available again the listener re-arms and drains the
  // backlog: the starved peer finally gets accepted...
  EXPECT_TRUE(WaitUntil(
      [&] { return server->counters().connections_accepted >= 2; }))
      << "backlogged connection never accepted after rlimit restore";
  // ...and a brand-new client connects and is served.
  auto late = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_TRUE((*late)->Ping().ok());
  ::close(starved);
}

TEST_F(ServerTest, ClientIoTimeoutOnHungServerReturnsUnavailable) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool entered = false;
  bool release = false;

  // The only worker parks at the gate: from the client's side the server
  // accepted the request and went silent.
  ServerOptions options;
  options.workers = 1;
  auto server = StartServer(options);
  server->SetExecutionHookForTesting([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  });

  ClientOptions copts;
  copts.io_timeout_ms = 200;
  auto client = Client::Connect("127.0.0.1", server->port(), copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const auto start = std::chrono::steady_clock::now();
  auto matches = (*client)->Range(data_[0].values(), 2.0);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(matches.ok()) << "request against a parked worker succeeded";
  EXPECT_TRUE(matches.status().IsUnavailable())
      << matches.status().ToString();
  // Pre-fix this blocked forever; the timeout must bound it.
  EXPECT_LT(elapsed_ms, 5000);

  // The reply may still arrive later, so the connection is poisoned.
  EXPECT_FALSE((*client)->Ping().ok());

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  server->Stop();  // drains the now-released request
}

TEST_F(ServerTest, ResetConnectionRetiresImmediately) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool entered = false;
  bool release = false;

  ServerOptions options;
  options.pollers = 1;
  options.workers = 1;
  auto server = StartServer(options);
  server->SetExecutionHookForTesting([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    entered = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return release; });
  });

  // Admit one request, park it on the worker, then reset the connection:
  // SO_LINGER{1,0} turns close() into an RST.
  const int fd = RawConnect(server->port());
  ASSERT_GE(fd, 0);
  const serde::Buffer frame = EncodeRangeFrame(9, data_[0].values(), 2.0);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(5),
                                 [&] { return entered; }));
  }
  const linger hard_close{1, 0};
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                         sizeof(hard_close)),
            0);
  ::close(fd);

  // Pre-fix the fatal recv error only stopped reads, and the connection
  // lingered until its parked reply flushed. It must retire while the
  // worker is still at the gate: the peer is gone.
  EXPECT_TRUE(WaitUntil(
      [&] { return server->counters().connections_closed >= 1; }))
      << "reset connection lingered behind a parked request";

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  server->Stop();
}

TEST(ClientConnectTimeoutTest, UnacceptedBacklogTimesOut) {
  // A listener that never accepts: once the backlog is full, a connect
  // gets no completion and Client::Connect must time out, not hang.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(lfd, 0), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);

  ClientOptions copts;
  copts.connect_timeout_ms = 200;
  std::vector<std::unique_ptr<Client>> parked;  // keep backlog slots filled
  bool timed_out = false;
  for (size_t i = 0; i < 16 && !timed_out; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto client = Client::Connect("127.0.0.1", port, copts);
    if (client.ok()) {
      parked.push_back(std::move(*client));
      continue;
    }
    if (!client.status().IsUnavailable()) {
      ::close(lfd);
      GTEST_SKIP() << "environment rejects backlog-overflow connects: "
                   << client.status().ToString();
    }
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GE(elapsed_ms, 150) << "timed out suspiciously early";
    EXPECT_LT(elapsed_ms, 5000) << "timeout did not bound the connect";
    timed_out = true;
  }
  ::close(lfd);
  if (!timed_out) {
    GTEST_SKIP() << "kernel completed 16 handshakes on a backlog of 0";
  }
}

}  // namespace
}  // namespace server
}  // namespace tsq
