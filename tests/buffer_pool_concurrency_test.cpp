// Copyright (c) 2026 The tsq Authors.
//
// Targeted tests for the v3 buffer-pool concurrency contract: lock-free
// optimistic hits, I/O-in-progress frames (a miss drops the shard lock
// around the pread), waiters sharing one in-flight load, optimistic-retry
// storms, and the bounded yield-retry pin-exhaustion path. Uses the
// page_file_read/page_file_write failpoint callbacks to make specific
// page I/Os block on a latch, so the "a slow miss no longer stalls
// same-shard hits" claim is proven by handshakes, not timing. Runs under
// the CI TSan job.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace tsq {
namespace {

using testing::TempDir;

/// A latch the read hook blocks on: the test learns when the reader is
/// inside the pread path and decides when to let it through.
class ReadGate {
 public:
  /// Blocks the calling reader until Open() (no-op once opened).
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  /// Blocks the test until a reader is parked inside Wait().
  void AwaitReader() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return entered_; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool open_ = false;
};

class BufferPoolConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pf = PageFile::Create(dir_.file("pages"));
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    file_ = std::move(*pf);
  }

  // Gate callbacks are installed per test; drop them even when an
  // assertion bailed out early (they are process-global state).
  void TearDown() override { failpoint::ClearAll(); }

  /// Materializes `count` pages through `pool` (each page's first word is
  /// its own id, so readers can verify what they pinned) and returns the
  /// ids. Handles are released before returning.
  std::vector<PageId> MakePages(BufferPool* pool, size_t count) {
    std::vector<PageId> ids;
    for (size_t i = 0; i < count; ++i) {
      auto h = pool->New();
      EXPECT_TRUE(h.ok());
      h->page()->WriteU64(0, h->id());
      h->MarkDirty();
      ids.push_back(h->id());
    }
    return ids;
  }

  TempDir dir_;
  std::unique_ptr<PageFile> file_;
};

TEST_F(BufferPoolConcurrencyTest, SameShardHitDoesNotStallBehindSlowMiss) {
  // One shard, two frames. Pages p[0], p[1] get evicted by p[2], p[3], so
  // the frames hold p[2]/p[3] and p[0]/p[1] live only on disk.
  BufferPool pool(file_.get(), 2, 1);
  ASSERT_EQ(pool.shards(), 1u);
  const std::vector<PageId> p = MakePages(&pool, 4);

  ReadGate gate;
  const PageId slow_page = p[0];
  failpoint::SetCallback("page_file_read", [&gate, slow_page](uint64_t id) {
    if (id == slow_page) gate.Wait();
  });

  // The miss: claims a frame, publishes it loading, drops the shard lock,
  // and parks inside the (gated) pread.
  std::thread misser([&pool, &p] {
    auto h = pool.Fetch(p[0]);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ(h->page()->ReadU64(0), p[0]);
  });
  gate.AwaitReader();

  // While that read is in flight, a hit on a *different* page of the same
  // shard must complete: v2 held the shard mutex across the pread and
  // this fetch would deadlock here. Run it on its own thread and require
  // completion long before any sane I/O timeout.
  auto hit = std::async(std::launch::async, [&pool, &p] {
    auto h = pool.Fetch(p[3]);
    return h.ok() && h->page()->ReadU64(0) == p[3];
  });
  ASSERT_EQ(hit.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "a same-shard hit stalled behind an in-flight miss";
  EXPECT_TRUE(hit.get());

  // A *miss* on yet another page of the shard must also proceed: the
  // second frame is free for it while the slow load owns the first.
  auto other_miss = std::async(std::launch::async, [&pool, &p] {
    auto h = pool.Fetch(p[1]);
    return h.ok() && h->page()->ReadU64(0) == p[1];
  });
  ASSERT_EQ(other_miss.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "a same-shard miss stalled behind an in-flight miss";
  EXPECT_TRUE(other_miss.get());

  gate.Open();
  misser.join();
  failpoint::Clear("page_file_read");
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentFetchersShareOneInFlightLoad) {
  // p[0] is on disk only (evicted by p[1..4] in a 4-frame pool).
  BufferPool pool(file_.get(), 4, 1);
  const std::vector<PageId> p = MakePages(&pool, 5);
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.ResetStats();

  ReadGate gate;
  std::atomic<int> reads_of_target{0};
  failpoint::SetCallback("page_file_read", [&](uint64_t id) {
    if (id == p[0]) {
      reads_of_target.fetch_add(1);
      gate.Wait();
    }
  });

  std::thread loader([&pool, &p] {
    auto h = pool.Fetch(p[0]);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
  });
  // Once the loader is inside the pread its loading frame and directory
  // entry are published, so fetchers started now must wait on the frame —
  // not start a second disk read — and resolve as hits.
  gate.AwaitReader();
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  std::atomic<int> good{0};
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&pool, &p, &good] {
      auto h = pool.Fetch(p[0]);
      if (h.ok() && h->page()->ReadU64(0) == p[0]) good.fetch_add(1);
    });
  }
  // Give the waiters a moment to reach the frame-wait, then release the
  // load. (The assertion below does not depend on this sleep; it only
  // makes the wait path the common case rather than a lucky interleave.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  loader.join();
  for (std::thread& t : waiters) t.join();
  failpoint::Clear("page_file_read");

  EXPECT_EQ(good.load(), kWaiters);
  EXPECT_EQ(reads_of_target.load(), 1) << "waiters duplicated the disk read";
  const BufferPoolStats stats = pool.stats();
  // Exactly one fetch paid the miss + disk read; every other fetch of the
  // page — started strictly after the load was published — is a hit.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.disk_reads, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kWaiters));
}

TEST_F(BufferPoolConcurrencyTest, OptimisticRetryStormKeepsCountersExact) {
  // Many threads hammering a small fully-cached hot set: every fetch is an
  // optimistic pin racing every other thread's pin/unpin CASes, which is
  // exactly the retry storm the seqlock versioning must survive. The
  // per-thread counters must account for every single fetch (the v3
  // classify-once rule), and the shared merged counters must equal their
  // sum.
  BufferPool pool(file_.get(), 8, 1);
  const std::vector<PageId> p = MakePages(&pool, 8);  // all resident
  pool.ResetStats();

  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 4000;
  std::atomic<uint64_t> tls_hits_sum{0}, tls_misses_sum{0};
  std::atomic<int> wrong_bytes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const ThreadPoolCounters before = ThisThreadPoolCounters();
      for (int i = 0; i < kFetchesPerThread; ++i) {
        const PageId id = p[(i * 7 + t) % p.size()];
        auto h = pool.Fetch(id);
        if (!h.ok() || h->page()->ReadU64(0) != id) wrong_bytes.fetch_add(1);
      }
      const ThreadPoolCounters& after = ThisThreadPoolCounters();
      const uint64_t hits = after.hits - before.hits;
      const uint64_t misses = after.misses - before.misses;
      // Classify-once: hits + misses == fetches, optimistic retries and
      // all.
      EXPECT_EQ(hits + misses, static_cast<uint64_t>(kFetchesPerThread));
      tls_hits_sum.fetch_add(hits);
      tls_misses_sum.fetch_add(misses);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong_bytes.load(), 0);
  const BufferPoolStats stats = pool.stats();
  // The working set fits, so after the warm-up News nothing is ever
  // evicted: every fetch is a hit and no disk read happens.
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads) * kFetchesPerThread);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.disk_reads, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(tls_hits_sum.load(), stats.hits.load());
  EXPECT_EQ(tls_misses_sum.load(), stats.misses.load());
}

TEST_F(BufferPoolConcurrencyTest, RetryStormSurvivesEvictionChurn) {
  // Same storm, but the working set is double the pool: optimistic pins
  // race evictions and in-flight loads, not just other pins. Correctness
  // here is "every fetch pins the right bytes and nothing is lost from
  // the counters" — hit/miss totals depend on the interleaving.
  BufferPool pool(file_.get(), 4, 2);
  const std::vector<PageId> p = MakePages(&pool, 8);
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.ResetStats();

  constexpr int kThreads = 4;
  constexpr int kFetchesPerThread = 1500;
  std::atomic<uint64_t> tls_hits_sum{0}, tls_misses_sum{0},
      tls_reads_sum{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const ThreadPoolCounters before = ThisThreadPoolCounters();
      for (int i = 0; i < kFetchesPerThread; ++i) {
        const PageId id = p[(i * 5 + t * 3) % p.size()];
        auto h = pool.Fetch(id);
        if (!h.ok() || h->page()->ReadU64(0) != id) wrong.fetch_add(1);
      }
      const ThreadPoolCounters& after = ThisThreadPoolCounters();
      EXPECT_EQ((after.hits - before.hits) + (after.misses - before.misses),
                static_cast<uint64_t>(kFetchesPerThread));
      tls_hits_sum.fetch_add(after.hits - before.hits);
      tls_misses_sum.fetch_add(after.misses - before.misses);
      tls_reads_sum.fetch_add(after.disk_reads - before.disk_reads);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong.load(), 0);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(tls_hits_sum.load(), stats.hits.load());
  EXPECT_EQ(tls_misses_sum.load(), stats.misses.load());
  EXPECT_EQ(tls_reads_sum.load(), stats.disk_reads.load());
  EXPECT_GT(stats.evictions.load(), 0u);
}

TEST_F(BufferPoolConcurrencyTest, TransientPinExhaustionResolvesOnRelease) {
  // One shard, two frames, both pinned. A third fetch enters the bounded
  // yield-retry loop; releasing one pin while it spins must let it
  // through (no error surfaces for a *transient* exhaustion).
  BufferPool pool(file_.get(), 2, 1);
  const std::vector<PageId> p = MakePages(&pool, 3);  // p[0] evicted

  auto pin1 = pool.Fetch(p[1]);
  auto pin2 = pool.Fetch(p[2]);
  ASSERT_TRUE(pin1.ok() && pin2.ok());

  auto blocked = std::async(std::launch::async, [&pool, &p] {
    auto h = pool.Fetch(p[0]);
    return h.ok() && h->page()->ReadU64(0) == p[0];
  });
  // Let the fetch reach the retry loop, then release a pin well inside
  // the ~0.4 s retry window.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pin1->Release();
  ASSERT_EQ(blocked.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_TRUE(blocked.get()) << "transient exhaustion surfaced an error";
}

TEST_F(BufferPoolConcurrencyTest, PermanentPinExhaustionSurfacesStatus) {
  BufferPool pool(file_.get(), 2, 1);
  const std::vector<PageId> p = MakePages(&pool, 3);

  auto pin1 = pool.Fetch(p[1]);
  auto pin2 = pool.Fetch(p[2]);
  ASSERT_TRUE(pin1.ok() && pin2.ok());

  // Nothing ever unpins: the bounded retry must expire and report
  // FailedPrecondition — for Fetch of an uncached page...
  EXPECT_TRUE(pool.Fetch(p[0]).status().IsFailedPrecondition());

  // ...and for New, which additionally must return the page it allocated
  // to the file's free list (the next successful allocation reuses the
  // id instead of growing the file).
  const uint64_t pages_before = file_->num_pages();
  EXPECT_TRUE(pool.New().status().IsFailedPrecondition());
  EXPECT_EQ(file_->num_pages(), pages_before + 1);  // allocated, then freed
  pin1->Release();
  auto recycled = pool.New();
  ASSERT_TRUE(recycled.ok());
  EXPECT_EQ(recycled->id(), pages_before + 1) << "freed page not recycled";
  EXPECT_EQ(file_->num_pages(), pages_before + 1) << "file grew anyway";
}

TEST_F(BufferPoolConcurrencyTest, HitsProceedWhileEvictionWritesBack) {
  // Eviction write-back of a dirty victim happens *under the shard
  // mutex*, but hits never take that mutex: park the evictor inside its
  // file_->Write — the lock is held from the frame claim through the
  // write — and a concurrent fetch of a cached page must still complete.
  // Three frames: after the fourth New only p[0] is evicted, so p[1..3]
  // stay resident while p[0] lives on disk.
  BufferPool pool(file_.get(), 3, 1);
  const std::vector<PageId> p = MakePages(&pool, 4);
  ASSERT_TRUE(pool.FlushAll().ok());  // everything clean

  // Dirty every resident page so whichever victim the clock picks has
  // write-back work (the fetches also set every referenced bit, which
  // the sweep's first lap clears).
  for (int i = 1; i <= 3; ++i) {
    auto h = pool.Fetch(p[i]);
    ASSERT_TRUE(h.ok());
    h->page()->WriteU64(0, p[i]);
    h->MarkDirty();
  }

  ReadGate gate;
  failpoint::SetCallback("page_file_write", [&gate](uint64_t) { gate.Wait(); });
  std::thread misser([&pool, &p] {
    auto h = pool.Fetch(p[0]);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ(h->page()->ReadU64(0), p[0]);
  });
  // The evictor is now parked mid-write-back, shard mutex held.
  gate.AwaitReader();

  // Hits are pin-CAS only: they must complete while the mutex is held.
  // Try all three resident pages — one of them is the victim mid-flight
  // (its fetch may legitimately block behind the eviction), but at least
  // the two survivors must be lock-free hits.
  std::atomic<int> completed{0};
  std::vector<std::thread> hitters;
  for (int i = 1; i <= 3; ++i) {
    hitters.emplace_back([&pool, &p, &completed, i] {
      auto h = pool.Fetch(p[i]);
      if (h.ok() && h->page()->ReadU64(0) == p[i]) completed.fetch_add(1);
    });
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (completed.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GE(completed.load(), 2)
      << "cached-page hits stalled behind an in-flight eviction write-back";

  gate.Open();
  misser.join();
  for (std::thread& t : hitters) t.join();
  failpoint::Clear("page_file_write");
  EXPECT_EQ(completed.load(), 3);
}

}  // namespace
}  // namespace tsq
