// Copyright (c) 2026 The tsq Authors.
//
// Tests for the CSV import/export bridge.

#include <fstream>

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/csv.h"
#include "workload/random_walk.h"

namespace tsq {
namespace workload {
namespace {

using tsq::testing::TempDir;

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(CsvParseTest, ParsesNameAndValues) {
  auto series = ParseCsvLine("IBM,1.5,2.25,-3.0");
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_EQ(series->name(), "IBM");
  EXPECT_EQ(series->values(), (RealVec{1.5, 2.25, -3.0}));
}

TEST(CsvParseTest, StripsWhitespace) {
  auto series = ParseCsvLine("  MSFT , 1.0 ,\t2.0 ");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->name(), "MSFT");
  EXPECT_EQ(series->length(), 2u);
}

TEST(CsvParseTest, RejectsMalformedRows) {
  EXPECT_TRUE(ParseCsvLine("onlyname").status().IsInvalidArgument());
  EXPECT_TRUE(ParseCsvLine("name,notanumber").status().IsInvalidArgument());
  EXPECT_TRUE(ParseCsvLine("name,1.0,").status().IsInvalidArgument());
  EXPECT_TRUE(ParseCsvLine("name,1.0,2.0x").status().IsInvalidArgument());
}

TEST(CsvParseTest, ScientificNotationAndNegatives) {
  auto series = ParseCsvLine("X,1e3,-2.5e-2,+4");
  ASSERT_TRUE(series.ok());
  EXPECT_DOUBLE_EQ((*series)[0], 1000.0);
  EXPECT_DOUBLE_EQ((*series)[1], -0.025);
  EXPECT_DOUBLE_EQ((*series)[2], 4.0);
}

TEST(CsvFileTest, LoadsSimpleFile) {
  TempDir dir;
  const std::string path = dir.file("data.csv");
  WriteFile(path,
            "# daily closes\n"
            "AAA,1,2,3\n"
            "\n"
            "BBB,4,5,6\n");
  auto series = LoadCsv(path);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->size(), 2u);
  EXPECT_EQ((*series)[0].name(), "AAA");
  EXPECT_EQ((*series)[1].values(), (RealVec{4, 5, 6}));
}

TEST(CsvFileTest, SkipsHeaderRow) {
  TempDir dir;
  const std::string path = dir.file("data.csv");
  WriteFile(path,
            "ticker,day1,day2,day3\n"
            "AAA,1,2,3\n");
  auto series = LoadCsv(path);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 1u);
  EXPECT_EQ((*series)[0].name(), "AAA");
}

TEST(CsvFileTest, RejectsInconsistentLengths) {
  TempDir dir;
  const std::string path = dir.file("data.csv");
  WriteFile(path, "AAA,1,2,3\nBBB,4,5\n");
  auto series = LoadCsv(path);
  EXPECT_TRUE(series.status().IsInvalidArgument());
}

TEST(CsvFileTest, RejectsEmptyAndMissingFiles) {
  TempDir dir;
  const std::string path = dir.file("empty.csv");
  WriteFile(path, "# nothing but comments\n");
  EXPECT_TRUE(LoadCsv(path).status().IsInvalidArgument());
  EXPECT_TRUE(LoadCsv(dir.file("missing.csv")).status().IsIOError());
}

TEST(CsvFileTest, SaveLoadRoundTrip) {
  TempDir dir;
  const std::string path = dir.file("roundtrip.csv");
  auto original = MakeRandomWalkDataset(31, 10, 16);
  ASSERT_TRUE(SaveCsv(path, original).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].name(), original[i].name());
    ASSERT_EQ((*loaded)[i].length(), original[i].length());
    for (size_t t = 0; t < original[i].length(); ++t) {
      // Full-precision output: exact round trip.
      EXPECT_DOUBLE_EQ((*loaded)[i][t], original[i][t]);
    }
  }
}

}  // namespace
}  // namespace workload
}  // namespace tsq
