// Copyright (c) 2026 The tsq Authors.
//
// Tests for the paged storage substrate: serde codecs and CRC, the page
// file (allocation, free list, persistence), the LRU buffer pool (hits,
// misses, eviction, pinning, write-back) and the segmented sequence
// relation (append/get/scan, reopen, torn-tail recovery, corruption
// detection, concurrent appenders).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/relation.h"
#include "storage/serde.h"
#include "test_util.h"

namespace tsq {
namespace {

using testing::TempDir;

// ---------------------------------------------------------------------------
// serde
// ---------------------------------------------------------------------------

TEST(SerdeTest, FixedWidthRoundTrip) {
  serde::Buffer buf;
  serde::PutU32(&buf, 0xDEADBEEFu);
  serde::PutU64(&buf, 0x0123456789ABCDEFull);
  serde::PutDouble(&buf, -273.15);
  serde::Reader reader(buf);
  uint32_t a = 0;
  uint64_t b = 0;
  double c = 0;
  ASSERT_TRUE(reader.GetU32(&a).ok());
  ASSERT_TRUE(reader.GetU64(&b).ok());
  ASSERT_TRUE(reader.GetDouble(&c).ok());
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
  EXPECT_EQ(c, -273.15);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(SerdeTest, StringAndVectorRoundTrip) {
  serde::Buffer buf;
  serde::PutString(&buf, "hello tsq");
  serde::PutRealVec(&buf, {1.5, -2.5, 0.0});
  serde::PutComplexVec(&buf, {Complex(1, 2), Complex(-3, 4)});
  serde::Reader reader(buf);
  std::string s;
  RealVec rv;
  ComplexVec cv;
  ASSERT_TRUE(reader.GetString(&s).ok());
  ASSERT_TRUE(reader.GetRealVec(&rv).ok());
  ASSERT_TRUE(reader.GetComplexVec(&cv).ok());
  EXPECT_EQ(s, "hello tsq");
  EXPECT_EQ(rv, (RealVec{1.5, -2.5, 0.0}));
  ASSERT_EQ(cv.size(), 2u);
  EXPECT_EQ(cv[1], Complex(-3, 4));
}

TEST(SerdeTest, EmptyContainers) {
  serde::Buffer buf;
  serde::PutString(&buf, "");
  serde::PutRealVec(&buf, {});
  serde::Reader reader(buf);
  std::string s = "junk";
  RealVec rv = {9.0};
  ASSERT_TRUE(reader.GetString(&s).ok());
  ASSERT_TRUE(reader.GetRealVec(&rv).ok());
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(rv.empty());
}

TEST(SerdeTest, TruncatedInputYieldsCorruption) {
  serde::Buffer buf;
  serde::PutU64(&buf, 42);
  buf.pop_back();
  serde::Reader reader(buf);
  uint64_t v = 0;
  EXPECT_TRUE(reader.GetU64(&v).IsCorruption());
}

TEST(SerdeTest, TruncatedVectorYieldsCorruption) {
  serde::Buffer buf;
  serde::PutRealVec(&buf, {1.0, 2.0, 3.0});
  buf.resize(buf.size() - 4);
  serde::Reader reader(buf);
  RealVec rv;
  EXPECT_TRUE(reader.GetRealVec(&rv).IsCorruption());
}

TEST(SerdeTest, OversizedLengthPrefixYieldsCorruption) {
  serde::Buffer buf;
  serde::PutU32(&buf, 1000);  // string length prefix with no payload
  serde::Reader reader(buf);
  std::string s;
  EXPECT_TRUE(reader.GetString(&s).IsCorruption());
}

TEST(SerdeTest, HostileVectorLengthCannotOverflowBoundsCheck) {
  // A claimed element count of 2^61 makes n * 8 wrap to 0 in u64; the
  // decoder must compare with a division instead and fail cleanly — the
  // tsqd server feeds these decoders raw network bytes.
  serde::Buffer buf;
  serde::PutU64(&buf, uint64_t{1} << 61);
  {
    serde::Reader reader(buf);
    RealVec rv;
    EXPECT_TRUE(reader.GetRealVec(&rv).IsCorruption());
  }
  // 2^60 * 16 wraps the same way for complex vectors.
  buf.clear();
  serde::PutU64(&buf, uint64_t{1} << 60);
  {
    serde::Reader reader(buf);
    ComplexVec cv;
    EXPECT_TRUE(reader.GetComplexVec(&cv).IsCorruption());
  }
}

TEST(SerdeTest, OversizedButNonWrappingVectorLengthIsCorruption) {
  serde::Buffer buf;
  serde::PutU64(&buf, 1000);  // claims 8000 payload bytes
  serde::PutDouble(&buf, 1.0);
  serde::Reader reader(buf);
  RealVec rv;
  EXPECT_TRUE(reader.GetRealVec(&rv).IsCorruption());
}

TEST(SerdeTest, ZeroLengthVectorsAndStringsDecodeEmpty) {
  serde::Buffer buf;
  serde::PutRealVec(&buf, {});
  serde::PutComplexVec(&buf, {});
  serde::PutString(&buf, "");
  serde::Reader reader(buf);
  RealVec rv{1.0};
  ComplexVec cv{Complex(1.0, 1.0)};
  std::string s = "stale";
  ASSERT_TRUE(reader.GetRealVec(&rv).ok());
  ASSERT_TRUE(reader.GetComplexVec(&cv).ok());
  ASSERT_TRUE(reader.GetString(&s).ok());
  EXPECT_TRUE(rv.empty());
  EXPECT_TRUE(cv.empty());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(SerdeTest, EmptyInputFailsEveryGetter) {
  serde::Reader reader(nullptr, 0);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d = 0.0;
  RealVec rv;
  EXPECT_TRUE(reader.GetU32(&u32).IsCorruption());
  EXPECT_TRUE(reader.GetU64(&u64).IsCorruption());
  EXPECT_TRUE(reader.GetDouble(&d).IsCorruption());
  EXPECT_TRUE(reader.GetRealVec(&rv).IsCorruption());
}

TEST(SerdeTest, Crc32KnownVectorAndSensitivity) {
  // The classic zlib check value.
  const std::string data = "123456789";
  EXPECT_EQ(serde::Crc32(reinterpret_cast<const uint8_t*>(data.data()),
                         data.size()),
            0xCBF43926u);
  serde::Buffer a = {1, 2, 3};
  serde::Buffer b = {1, 2, 4};
  EXPECT_NE(serde::Crc32(a), serde::Crc32(b));
  EXPECT_EQ(serde::Crc32(serde::Buffer{}), 0u);
}

// ---------------------------------------------------------------------------
// Page / PageFile
// ---------------------------------------------------------------------------

TEST(PageTest, U64ReadWrite) {
  Page p(4096);
  p.WriteU64(100, 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(p.ReadU64(100), 0xAABBCCDDEEFF0011ull);
  p.Clear();
  EXPECT_EQ(p.ReadU64(100), 0u);
}

TEST(PageFileTest, CreateAllocateWriteRead) {
  TempDir dir;
  auto pf = PageFile::Create(dir.file("pages"), 4096);
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  auto id1 = (*pf)->Allocate();
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, 1u);

  Page page(4096);
  page.WriteU64(0, 777);
  ASSERT_TRUE((*pf)->Write(*id1, page).ok());
  Page back;
  ASSERT_TRUE((*pf)->Read(*id1, &back).ok());
  EXPECT_EQ(back.ReadU64(0), 777u);
  EXPECT_EQ((*pf)->num_pages(), 1u);
}

TEST(PageFileTest, RejectsBadPageSize) {
  TempDir dir;
  EXPECT_TRUE(PageFile::Create(dir.file("p"), 100).status().IsInvalidArgument());
  EXPECT_TRUE(
      PageFile::Create(dir.file("p"), 4000).status().IsInvalidArgument());
}

TEST(PageFileTest, RejectsInvalidPageIds) {
  TempDir dir;
  auto pf = PageFile::Create(dir.file("pages"));
  ASSERT_TRUE(pf.ok());
  Page page(kDefaultPageSize);
  EXPECT_TRUE((*pf)->Read(0, &page).IsInvalidArgument());      // header page
  EXPECT_TRUE((*pf)->Read(99, &page).IsInvalidArgument());     // unallocated
  EXPECT_TRUE((*pf)->Write(5, page).IsInvalidArgument());
  EXPECT_TRUE((*pf)->Free(0).IsInvalidArgument());
}

TEST(PageFileTest, FreeListRecyclesPages) {
  TempDir dir;
  auto pf = PageFile::Create(dir.file("pages"));
  ASSERT_TRUE(pf.ok());
  PageId a = (*pf)->Allocate().value();
  PageId b = (*pf)->Allocate().value();
  PageId c = (*pf)->Allocate().value();
  EXPECT_EQ((*pf)->num_pages(), 3u);
  ASSERT_TRUE((*pf)->Free(b).ok());
  ASSERT_TRUE((*pf)->Free(a).ok());
  // LIFO recycling: a then b come back before any new page is grown.
  EXPECT_EQ((*pf)->Allocate().value(), a);
  EXPECT_EQ((*pf)->Allocate().value(), b);
  EXPECT_EQ((*pf)->Allocate().value(), c + 1);
  EXPECT_EQ((*pf)->num_pages(), 4u);
}

TEST(PageFileTest, PersistsAcrossReopen) {
  TempDir dir;
  const std::string path = dir.file("pages");
  PageId id = 0;
  {
    auto pf = PageFile::Create(path, 2048);
    ASSERT_TRUE(pf.ok());
    id = (*pf)->Allocate().value();
    Page page(2048);
    page.WriteU64(8, 123456789ull);
    ASSERT_TRUE((*pf)->Write(id, page).ok());
    ASSERT_TRUE((*pf)->Sync().ok());
  }
  auto reopened = PageFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->page_size(), 2048u);
  EXPECT_EQ((*reopened)->num_pages(), 1u);
  Page back;
  ASSERT_TRUE((*reopened)->Read(id, &back).ok());
  EXPECT_EQ(back.ReadU64(8), 123456789ull);
}

TEST(PageFileTest, OpenRejectsGarbageFile) {
  TempDir dir;
  const std::string path = dir.file("junk");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a page file at all, definitely not 32 bytes ok", f);
  std::fclose(f);
  EXPECT_TRUE(PageFile::Open(path).status().IsCorruption());
}

TEST(PageFileTest, OpenMissingFileIsIOError) {
  EXPECT_TRUE(PageFile::Open("/nonexistent/dir/pages").status().IsIOError());
}

TEST(PageFileTest, CountsReadsAndWrites) {
  TempDir dir;
  auto pf = PageFile::Create(dir.file("pages"));
  ASSERT_TRUE(pf.ok());
  PageId id = (*pf)->Allocate().value();
  (*pf)->ResetStats();
  Page page(kDefaultPageSize);
  ASSERT_TRUE((*pf)->Write(id, page).ok());
  ASSERT_TRUE((*pf)->Read(id, &page).ok());
  ASSERT_TRUE((*pf)->Read(id, &page).ok());
  EXPECT_EQ((*pf)->stats().page_writes, 1u);
  EXPECT_EQ((*pf)->stats().page_reads, 2u);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pf = PageFile::Create(dir_.file("pages"));
    ASSERT_TRUE(pf.ok());
    file_ = std::move(*pf);
  }
  TempDir dir_;
  std::unique_ptr<PageFile> file_;
};

TEST_F(BufferPoolTest, NewFetchRoundTrip) {
  BufferPool pool(file_.get(), 4);
  auto h = pool.New();
  ASSERT_TRUE(h.ok());
  const PageId id = h->id();
  h->page()->WriteU64(0, 42);
  h->MarkDirty();
  h->Release();
  auto h2 = pool.Fetch(id);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h2->page()->ReadU64(0), 42u);
  EXPECT_EQ(pool.stats().hits, 1u);  // still cached
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  BufferPool pool(file_.get(), 2);
  PageId first = 0;
  {
    auto h = pool.New();
    ASSERT_TRUE(h.ok());
    first = h->id();
    h->page()->WriteU64(16, 99);
    h->MarkDirty();
  }
  // Fill the pool so `first` is evicted.
  for (int i = 0; i < 3; ++i) {
    auto h = pool.New();
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  auto back = pool.Fetch(first);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->page()->ReadU64(16), 99u);
  EXPECT_GT(pool.stats().disk_reads, 0u);
}

TEST_F(BufferPoolTest, PinnedPagesCannotBeEvicted) {
  BufferPool pool(file_.get(), 2);
  auto a = pool.New();
  auto b = pool.New();
  ASSERT_TRUE(a.ok() && b.ok());
  // Both frames pinned: a third page must fail.
  auto c = pool.New();
  EXPECT_TRUE(c.status().IsFailedPrecondition());
  a->Release();
  auto d = pool.New();  // now one frame is evictable
  EXPECT_TRUE(d.ok());
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  BufferPool pool(file_.get(), 2);
  PageId a = pool.New().value().id();
  PageId b = pool.New().value().id();
  // Touch a so b becomes the LRU victim.
  pool.Fetch(a).value();
  pool.New().value();  // evicts b
  pool.ResetStats();
  pool.Fetch(a).value();
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.Fetch(b).value();
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, FlushAllPersistsWithoutEviction) {
  BufferPool pool(file_.get(), 4);
  auto h = pool.New();
  ASSERT_TRUE(h.ok());
  const PageId id = h->id();
  h->page()->WriteU64(0, 7);
  h->MarkDirty();
  h->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  // Read through the file directly: the bytes must be there.
  Page raw;
  ASSERT_TRUE(file_->Read(id, &raw).ok());
  EXPECT_EQ(raw.ReadU64(0), 7u);
}

TEST_F(BufferPoolTest, DeleteRemovesFromCacheAndFreesPage) {
  BufferPool pool(file_.get(), 4);
  auto h = pool.New();
  ASSERT_TRUE(h.ok());
  const PageId id = h->id();
  EXPECT_TRUE(pool.Delete(id).IsFailedPrecondition());  // still pinned
  h->Release();
  ASSERT_TRUE(pool.Delete(id).ok());
  // The id is recycled by the next allocation.
  EXPECT_EQ(pool.New().value().id(), id);
}

TEST_F(BufferPoolTest, AutoShardCountKeepsSmallPoolsUnsharded) {
  // Tiny pools (the tests above) must keep the exact single-LRU semantics
  // of the unsharded pool; big pools fan out, capped at 16 shards.
  EXPECT_EQ(BufferPool(file_.get(), 2).shards(), 1u);
  EXPECT_EQ(BufferPool(file_.get(), 7).shards(), 1u);
  EXPECT_EQ(BufferPool(file_.get(), 32).shards(), 4u);
  EXPECT_EQ(BufferPool(file_.get(), 1024).shards(), 16u);
  // Explicit counts are clamped so every shard owns at least one frame.
  EXPECT_EQ(BufferPool(file_.get(), 4, 64).shards(), 4u);
  EXPECT_EQ(BufferPool(file_.get(), 8, 4).shards(), 4u);
}

TEST_F(BufferPoolTest, ShardMappingMixesSequentialIds) {
  // v3 maps page ids to shards through a splitmix64 fold, so the
  // sequential ids a tree build allocates do NOT stripe round-robin into
  // lock-step shard sequences the way `id % shards` did.
  BufferPool pool(file_.get(), 8, 4);
  ASSERT_EQ(pool.shards(), 4u);
  bool deviates_from_modulo = false;
  std::vector<size_t> per_shard(pool.shards(), 0);
  for (PageId id = 1; id <= 4096; ++id) {
    const size_t shard = pool.ShardIndex(id);
    ASSERT_LT(shard, pool.shards());
    // Deterministic: the same id always lands on the same shard.
    EXPECT_EQ(pool.ShardIndex(id), shard);
    if (shard != id % pool.shards()) deviates_from_modulo = true;
    ++per_shard[shard];
  }
  EXPECT_TRUE(deviates_from_modulo);
  // The mix spreads ids roughly evenly (each shard within 2x of fair).
  for (size_t s = 0; s < per_shard.size(); ++s) {
    EXPECT_GT(per_shard[s], 4096u / 8) << "shard " << s << " starved";
    EXPECT_LT(per_shard[s], 4096u / 2) << "shard " << s << " overloaded";
  }
}

/// Materializes pages through `pool` until `shard` has seen at least
/// `count` of them, returning those ids (pages are unpinned afterwards).
std::vector<PageId> NewPagesInShard(BufferPool* pool, size_t shard,
                                    size_t count) {
  std::vector<PageId> ids;
  for (int i = 0; i < 256 && ids.size() < count; ++i) {
    auto h = pool->New();
    EXPECT_TRUE(h.ok());
    if (h.ok() && pool->ShardIndex(h->id()) == shard) ids.push_back(h->id());
  }
  EXPECT_EQ(ids.size(), count) << "hash starved shard " << shard;
  return ids;
}

TEST_F(BufferPoolTest, ShardEvictionPressureIsPerShard) {
  // Two shards, one frame each. A pinned page exhausts its own shard while
  // the neighboring shard keeps serving. Page ids are chosen through
  // ShardIndex — placement is a mixing hash, not id % shards.
  BufferPool pool(file_.get(), 2, 2);
  ASSERT_EQ(pool.shards(), 2u);
  const std::vector<PageId> shard0 = NewPagesInShard(&pool, 0, 2);
  const std::vector<PageId> shard1 = NewPagesInShard(&pool, 1, 1);
  ASSERT_EQ(shard0.size(), 2u);
  ASSERT_EQ(shard1.size(), 1u);

  auto pinned = pool.Fetch(shard0[0]);
  ASSERT_TRUE(pinned.ok());
  // Shard 0 is exhausted: its only frame is pinned.
  EXPECT_TRUE(pool.Fetch(shard0[1]).status().IsFailedPrecondition());
  // Shard 1 is unaffected.
  EXPECT_TRUE(pool.Fetch(shard1[0]).ok());
}

TEST_F(BufferPoolTest, PinnedPageSurvivesNeighboringShardPressure) {
  // Regression: a pinned page must never be evicted (or have its frame
  // reused) because a *different* shard is thrashing.
  BufferPool pool(file_.get(), 2, 2);
  const std::vector<PageId> victim = NewPagesInShard(&pool, 0, 1);
  const std::vector<PageId> hammer = NewPagesInShard(&pool, 1, 3);
  ASSERT_EQ(victim.size(), 1u);
  ASSERT_EQ(hammer.size(), 3u);

  auto pinned = pool.Fetch(victim[0]);  // shard 0's only frame
  ASSERT_TRUE(pinned.ok());
  pinned->page()->WriteU64(24, 0xFEEDFACEull);
  pinned->MarkDirty();

  // Hammer shard 1 far beyond its single frame.
  for (int round = 0; round < 8; ++round) {
    for (const PageId id : hammer) {
      auto h = pool.Fetch(id);
      ASSERT_TRUE(h.ok()) << "round " << round << " page " << id;
    }
  }
  EXPECT_GT(pool.stats().evictions, 0u);

  // The pinned frame is untouched and still cached.
  EXPECT_EQ(pinned->page()->ReadU64(24), 0xFEEDFACEull);
  pinned->Release();
  const uint64_t hits_before = pool.stats().hits;
  ASSERT_TRUE(pool.Fetch(victim[0]).ok());
  EXPECT_EQ(pool.stats().hits, hits_before + 1)
      << "pinned page fell out of cache";
}

TEST_F(BufferPoolTest, FlushAllWritesEveryShardDirtyFrameOnce) {
  BufferPool pool(file_.get(), 8, 4);
  std::vector<PageId> ids;
  std::vector<size_t> shard_pages(pool.shards(), 0);
  for (int i = 0; i < 8; ++i) {
    auto h = pool.New();
    ASSERT_TRUE(h.ok());
    h->page()->WriteU64(0, 1000 + h->id());
    h->MarkDirty();
    ids.push_back(h->id());
    ++shard_pages[pool.ShardIndex(h->id())];
  }
  // The hash may overflow a two-frame shard; overflowed pages were already
  // written back at eviction, so the flush writes the resident dirty set.
  uint64_t resident_dirty = 0;
  for (const size_t count : shard_pages) {
    resident_dirty += std::min<size_t>(count, 2);
  }
  const uint64_t writes_before = pool.stats().disk_writes;
  ASSERT_TRUE(pool.FlushAll().ok());
  // Every resident dirty frame in every shard was written exactly once...
  EXPECT_EQ(pool.stats().disk_writes, writes_before + resident_dirty);
  // ...and every page — flushed or evicted earlier — is on disk.
  for (const PageId id : ids) {
    Page raw;
    ASSERT_TRUE(file_->Read(id, &raw).ok());
    EXPECT_EQ(raw.ReadU64(0), 1000 + id) << "page " << id;
  }
  // A second flush finds nothing dirty in any shard.
  const uint64_t writes_after = pool.stats().disk_writes;
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.stats().disk_writes, writes_after);
}

TEST_F(BufferPoolTest, StatsMergeAcrossShards) {
  // Four shards of two frames each, 16 sequentially allocated pages. The
  // mixing hash decides placement, so derive the expected resident set
  // per shard: with never-re-referenced pages the clock sweep evicts in
  // arrival order, leaving each shard's last two pages cached. Hits and
  // misses then land across the shards, and stats() must report the
  // exact merged sums.
  BufferPool pool(file_.get(), 8, 4);
  std::vector<std::vector<PageId>> by_shard(pool.shards());
  for (int i = 0; i < 16; ++i) {
    auto h = pool.New();
    ASSERT_TRUE(h.ok());
    by_shard[pool.ShardIndex(h->id())].push_back(h->id());
  }
  pool.ResetStats();

  std::vector<PageId> resident, evicted;
  for (const std::vector<PageId>& pages : by_shard) {
    const size_t keep = std::min<size_t>(pages.size(), 2);
    resident.insert(resident.end(), pages.end() - keep, pages.end());
    evicted.insert(evicted.end(), pages.begin(), pages.end() - keep);
  }
  ASSERT_EQ(resident.size() + evicted.size(), 16u);

  for (const PageId id : resident) ASSERT_TRUE(pool.Fetch(id).ok());
  for (const PageId id : evicted) ASSERT_TRUE(pool.Fetch(id).ok());

  const BufferPoolStats merged = pool.stats();
  EXPECT_EQ(merged.hits, resident.size());
  EXPECT_EQ(merged.misses, evicted.size());
  EXPECT_EQ(merged.disk_reads, evicted.size());
  // Refetching the evicted pages displaces exactly as many frames.
  EXPECT_EQ(merged.evictions, evicted.size());

  pool.ResetStats();
  const BufferPoolStats cleared = pool.stats();
  EXPECT_EQ(cleared.hits, 0u);
  EXPECT_EQ(cleared.misses, 0u);
  EXPECT_EQ(cleared.evictions, 0u);
}

TEST_F(BufferPoolTest, MoveSemanticsOfHandles) {
  BufferPool pool(file_.get(), 2);
  auto a = pool.New();
  ASSERT_TRUE(a.ok());
  PageHandle h = std::move(*a);
  EXPECT_TRUE(h.valid());
  PageHandle h2;
  h2 = std::move(h);
  EXPECT_TRUE(h2.valid());
  EXPECT_FALSE(h.valid());  // NOLINT(bugprone-use-after-move): asserting move-out state
  h2.Release();
  EXPECT_FALSE(h2.valid());
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

TEST(RelationTest, AppendGetRoundTrip) {
  TempDir dir;
  auto rel = Relation::Create(dir.file("rel"));
  ASSERT_TRUE(rel.ok());
  const RealVec values = {1.0, 2.0, 3.0};
  const ComplexVec spectrum = {Complex(6, 0), Complex(-1, 1), Complex(-1, -1)};
  auto id = (*rel)->Append("IBM", values, spectrum);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  auto rec = (*rel)->Get(0);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->name, "IBM");
  EXPECT_EQ(rec->values, values);
  EXPECT_EQ(rec->dft, spectrum);
  EXPECT_EQ((*rel)->size(), 1u);
}

TEST(RelationTest, DenseIdsAndScanOrder) {
  TempDir dir;
  auto rel = Relation::Create(dir.file("rel"));
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 10; ++i) {
    auto id = (*rel)->Append("S" + std::to_string(i),
                             {static_cast<double>(i)}, {Complex(i, 0)});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<SeriesId>(i));
  }
  std::vector<SeriesId> seen;
  ASSERT_TRUE((*rel)
                  ->Scan([&seen](const SeriesRecord& rec) {
                    seen.push_back(rec.id);
                    return true;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
}

TEST(RelationTest, ScanEarlyStop) {
  TempDir dir;
  auto rel = Relation::Create(dir.file("rel"));
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*rel)->Append("x", {1.0}, {Complex(1, 0)}).ok());
  }
  int count = 0;
  ASSERT_TRUE((*rel)
                  ->Scan([&count](const SeriesRecord&) {
                    ++count;
                    return count < 3;
                  })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST(RelationTest, GetMissingIdIsNotFound) {
  TempDir dir;
  auto rel = Relation::Create(dir.file("rel"));
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE((*rel)->Get(0).status().IsNotFound());
}

TEST(RelationTest, ReopenRebuildsDirectory) {
  TempDir dir;
  const std::string path = dir.file("rel");
  {
    auto rel = Relation::Create(path);
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE((*rel)->Append("A", {1, 2}, {Complex(3, 0), Complex(0, 0)}).ok());
    ASSERT_TRUE((*rel)->Append("B", {4, 5, 6}, {Complex(15, 0)}).ok());
    ASSERT_TRUE((*rel)->Flush().ok());
  }
  auto rel = Relation::Open(path);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ((*rel)->size(), 2u);
  auto rec = (*rel)->Get(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->name, "B");
  EXPECT_EQ(rec->values, (RealVec{4, 5, 6}));
  // Appending after reopen keeps ids dense.
  EXPECT_EQ((*rel)->Append("C", {7}, {Complex(7, 0)}).value(), 2u);
}

/// Flips one byte of `path` at `offset` (negative = from the end).
void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, offset < 0 ? SEEK_END : SEEK_SET), 0);
  const long pos = std::ftell(f);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, pos, SEEK_SET), 0);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
}

/// Truncates `path` by `bytes` (must leave at least one byte of the last
/// record behind for a mid-record tear).
void TruncateBy(const std::string& path, uint64_t bytes) {
  const uint64_t size = std::filesystem::file_size(path);
  ASSERT_GT(size, bytes);
  std::filesystem::resize_file(path, size - bytes);
}

TEST(RelationTest, DetectsCorruptedPayloadMidFile) {
  TempDir dir;
  const std::string path = dir.file("rel");
  {
    auto rel = Relation::Create(path);
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE((*rel)->Append("A", {1.0, 2.0, 3.0, 4.0}, {Complex(1, 1)}).ok());
    ASSERT_TRUE((*rel)->Append("B", {5.0, 6.0, 7.0, 8.0}, {Complex(2, 2)}).ok());
    ASSERT_TRUE((*rel)->Flush().ok());
  }
  // Flip one payload byte of the FIRST record: damage before the last
  // record is corruption, not a torn tail, and must fail the open.
  FlipByteAt(path + ".0", 40);
  EXPECT_TRUE(Relation::Open(path).status().IsCorruption());
}

TEST(RelationTest, DropsTornTailRecordOnOpen) {
  TempDir dir;
  const std::string path = dir.file("rel");
  {
    auto rel = Relation::Create(path);
    ASSERT_TRUE(rel.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*rel)
                      ->Append("S" + std::to_string(i),
                               {static_cast<double>(i), 1.0},
                               {Complex(i, 0)})
                      .ok());
    }
    ASSERT_TRUE((*rel)->Flush().ok());
  }
  // Tear the last record mid-payload, as a crash between write and flush
  // would.
  TruncateBy(path + ".0", 5);
  const uint64_t torn_size = std::filesystem::file_size(path + ".0");

  auto rel = Relation::Open(path);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ((*rel)->size(), 2u);
  for (uint64_t id = 0; id < 2; ++id) {
    auto rec = (*rel)->Get(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->name, "S" + std::to_string(id));
  }
  EXPECT_TRUE((*rel)->Get(2).status().IsNotFound());
  // The torn bytes were truncated away, and the freed id is reused.
  EXPECT_LT(std::filesystem::file_size(path + ".0"), torn_size);
  EXPECT_EQ((*rel)->Append("again", {9.0, 9.0}, {Complex(9, 0)}).value(), 2u);
  auto rec = (*rel)->Get(2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->name, "again");
}

TEST(RelationTest, DropsTailRecordWithBadChecksum) {
  TempDir dir;
  const std::string path = dir.file("rel");
  {
    auto rel = Relation::Create(path);
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE((*rel)->Append("keep", {1.0, 2.0}, {Complex(1, 0)}).ok());
    ASSERT_TRUE((*rel)->Append("torn", {3.0, 4.0}, {Complex(2, 0)}).ok());
    ASSERT_TRUE((*rel)->Flush().ok());
  }
  // Scribble inside the LAST record's payload: a checksum mismatch on the
  // segment's final record reads as a torn append and is dropped.
  FlipByteAt(path + ".0", -3);
  auto rel = Relation::Open(path);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ((*rel)->size(), 1u);
  EXPECT_EQ((*rel)->Get(0).value().name, "keep");
}

TEST(RelationTest, MultiSegmentRecoveryKeepsDensePrefix) {
  TempDir dir;
  const std::string path = dir.file("rel");
  {
    auto rel = Relation::Create(path, /*num_segments=*/2);
    ASSERT_TRUE(rel.ok());
    // Segment 0 holds ids 0, 2, 4; segment 1 holds ids 1, 3.
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*rel)
                      ->Append("S" + std::to_string(i),
                               {static_cast<double>(i)}, {Complex(i, 0)})
                      .ok());
    }
    ASSERT_TRUE((*rel)->Flush().ok());
  }
  // Tear id 3 (tail of segment 1). Id 4 is fully written in segment 0 but
  // must be dropped too — recovery keeps the largest dense id prefix.
  TruncateBy(path + ".1", 4);

  auto rel = Relation::Open(path);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ((*rel)->num_segments(), 2u);
  EXPECT_EQ((*rel)->size(), 3u);
  std::vector<SeriesId> seen;
  ASSERT_TRUE((*rel)
                  ->Scan([&seen](const SeriesRecord& rec) {
                    seen.push_back(rec.id);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<SeriesId>{0, 1, 2}));
  // New appends refill ids 3 and 4, and a further reopen stays clean.
  EXPECT_EQ((*rel)->Append("N3", {3.5}, {Complex(3, 0)}).value(), 3u);
  EXPECT_EQ((*rel)->Append("N4", {4.5}, {Complex(4, 0)}).value(), 4u);
  ASSERT_TRUE((*rel)->Flush().ok());
  rel->reset();
  auto reopened = Relation::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 5u);
  EXPECT_EQ((*reopened)->Get(3).value().name, "N3");
  EXPECT_EQ((*reopened)->Get(4).value().name, "N4");
}

TEST(RelationTest, SegmentFilesAreDeterministicAndIdOrdered) {
  // A record's segment is id % N and records sit in id order within a
  // segment, so the file bytes are a pure function of the record
  // sequence.
  TempDir dir;
  auto rel = Relation::Create(dir.file("rel"), /*num_segments=*/3);
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE((*rel)
                    ->Append("S" + std::to_string(i),
                             {static_cast<double>(i)}, {Complex(i, 0)})
                    .ok());
  }
  for (size_t s = 0; s < 3; ++s) {
    std::vector<SeriesId> ids;
    ASSERT_TRUE((*rel)
                    ->ScanSegment(s, /*limit_id=*/100,
                                  [&ids](const SeriesRecord& rec) {
                                    ids.push_back(rec.id);
                                    return true;
                                  })
                    .ok());
    std::vector<SeriesId> expected;
    for (SeriesId id = s; id < 7; id += 3) expected.push_back(id);
    EXPECT_EQ(ids, expected) << "segment " << s;
  }
}

TEST(RelationTest, ConcurrentAppendersYieldDenseIdsAndReadableTail) {
  // Many free-running appenders against one relation: ids stay dense, the
  // watermark only exposes fully written records, and a racing reader
  // chases the tail with lock-free Gets. (The CI TSan job runs this.)
  TempDir dir;
  auto rel = Relation::Create(dir.file("rel"), /*num_segments=*/4);
  ASSERT_TRUE(rel.ok());
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 40;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rel, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const double v = static_cast<double>(t * kPerThread + i);
        ASSERT_TRUE(
            (*rel)->Append("w", {v}, {Complex(v, 0)}).ok());
      }
    });
  }
  std::thread reader([&rel] {
    uint64_t seen = 0;
    while (seen < kThreads * kPerThread) {
      const uint64_t size = (*rel)->size();
      for (; seen < size; ++seen) {
        auto rec = (*rel)->Get(seen);
        ASSERT_TRUE(rec.ok()) << rec.status().ToString();
        ASSERT_EQ(rec->id, seen);
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& w : writers) w.join();
  reader.join();
  EXPECT_EQ((*rel)->size(), kThreads * kPerThread);
  // Every id readable, every segment id-ordered.
  for (uint64_t id = 0; id < kThreads * kPerThread; ++id) {
    ASSERT_TRUE((*rel)->Get(id).ok());
  }
}

TEST(RelationTest, ResetStatsRacesScannersSafely) {
  // The v2 reset stores each counter individually (relaxed atomics), so
  // resetting while scanners bump the counters is race-free.
  TempDir dir;
  auto rel = Relation::Create(dir.file("rel"));
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE((*rel)->Append("x", {1.0}, {Complex(1, 0)}).ok());
  }
  std::thread scanner([&rel] {
    for (int rep = 0; rep < 50; ++rep) {
      ASSERT_TRUE((*rel)->Scan([](const SeriesRecord&) { return true; }).ok());
    }
  });
  std::thread resetter([&rel] {
    for (int rep = 0; rep < 200; ++rep) (*rel)->ResetStats();
  });
  scanner.join();
  resetter.join();
  (*rel)->ResetStats();
  EXPECT_EQ((*rel)->stats().records_read.load(), 0u);
}

TEST(RelationTest, StatsCountReadsAndWrites) {
  TempDir dir;
  auto rel = Relation::Create(dir.file("rel"));
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE((*rel)->Append("A", {1.0}, {Complex(1, 0)}).ok());
  EXPECT_GT((*rel)->stats().bytes_written, 0u);
  (*rel)->ResetStats();
  ASSERT_TRUE((*rel)->Get(0).ok());
  EXPECT_EQ((*rel)->stats().records_read, 1u);
  EXPECT_GT((*rel)->stats().bytes_read, 0u);
}

}  // namespace
}  // namespace tsq
