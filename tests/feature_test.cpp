// Copyright (c) 2026 The tsq Authors.
//
// Tests for the feature layer: layouts, extraction (the paper's 6-D
// mean/std + polar-coefficient scheme), search-rectangle construction in
// both coordinate systems (Sec. 3.1 / Fig. 7 including edge cases), the
// FeatureTransform -> AffineMap lowering with safety enforcement, and the
// polar annular-sector NN metric.

#include <cmath>
#include <numbers>

#include "common/random.h"
#include "core/feature.h"
#include "core/feature_space.h"
#include "core/search_rect.h"
#include "dft/dft.h"
#include "gtest/gtest.h"
#include "series/normal_form.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

constexpr double kPi = std::numbers::pi;

using testing::RandomRealVec;

// ---------------------------------------------------------------------------
// FeatureLayout
// ---------------------------------------------------------------------------

TEST(FeatureLayoutTest, PaperLayoutIsSixDimensionalPolar) {
  const FeatureLayout layout = FeatureLayout::Paper();
  EXPECT_EQ(layout.dims(), 6u);
  EXPECT_EQ(layout.space, CoordinateSpace::kPolar);
  EXPECT_TRUE(layout.normalize);
  EXPECT_TRUE(layout.include_mean_std);
  EXPECT_EQ(layout.first_coefficient, 1u);
  EXPECT_EQ(layout.num_coefficients, 2u);
  EXPECT_EQ(layout.spectral_offset(), 2u);
  EXPECT_TRUE(layout.Validate(128).ok());
}

TEST(FeatureLayoutTest, AgrawalLayoutIsRawRectangular) {
  const FeatureLayout layout = FeatureLayout::Agrawal(3);
  EXPECT_EQ(layout.dims(), 6u);
  EXPECT_EQ(layout.space, CoordinateSpace::kRectangular);
  EXPECT_FALSE(layout.normalize);
  EXPECT_FALSE(layout.include_mean_std);
  EXPECT_EQ(layout.first_coefficient, 0u);
  EXPECT_EQ(layout.spectral_offset(), 0u);
}

TEST(FeatureLayoutTest, ValidateRejectsBadRanges) {
  FeatureLayout layout = FeatureLayout::Paper();
  EXPECT_TRUE(layout.Validate(128).ok());
  EXPECT_TRUE(layout.Validate(2).IsInvalidArgument());  // needs X_1, X_2
  layout.num_coefficients = 0;
  EXPECT_TRUE(layout.Validate(128).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// FeatureExtractor
// ---------------------------------------------------------------------------

TEST(FeatureExtractorTest, PaperPipelineProducesNormalFormSpectrum) {
  Rng rng(1);
  RealVec x = RandomRealVec(&rng, 64, 10.0, 90.0);
  FeatureExtractor extractor(FeatureLayout::Paper());
  SeriesFeatures f = extractor.Extract(x);

  NormalForm nf = ToNormalForm(x);
  EXPECT_NEAR(f.mean, nf.mean, 1e-12);
  EXPECT_NEAR(f.std, nf.std, 1e-12);
  ASSERT_EQ(f.spectrum.size(), 64u);
  // X_0 of a normal form is zero.
  EXPECT_NEAR(std::abs(f.spectrum[0]), 0.0, 1e-9);
  testing::ExpectComplexNear(f.spectrum, dft::Forward(nf.normalized), 1e-9);
}

TEST(FeatureExtractorTest, RawLayoutKeepsRawSpectrum) {
  Rng rng(2);
  RealVec x = RandomRealVec(&rng, 32, 10.0, 90.0);
  FeatureExtractor extractor(FeatureLayout::Agrawal(4));
  SeriesFeatures f = extractor.Extract(x);
  testing::ExpectComplexNear(f.spectrum, dft::Forward(x), 1e-9);
  EXPECT_GT(f.std, 0.0);  // stats still filled in
}

TEST(FeatureExtractorTest, PolarPointLayout) {
  Rng rng(3);
  RealVec x = RandomRealVec(&rng, 32, 10.0, 90.0);
  FeatureExtractor extractor(FeatureLayout::Paper());
  SeriesFeatures f = extractor.Extract(x);
  spatial::Point p = extractor.ToPoint(f);
  ASSERT_EQ(p.size(), 6u);
  EXPECT_NEAR(p[0], f.mean, 1e-12);
  EXPECT_NEAR(p[1], f.std, 1e-12);
  EXPECT_NEAR(p[2], std::abs(f.spectrum[1]), 1e-12);
  EXPECT_NEAR(p[3], std::arg(f.spectrum[1]), 1e-12);
  EXPECT_NEAR(p[4], std::abs(f.spectrum[2]), 1e-12);
  EXPECT_NEAR(p[5], std::arg(f.spectrum[2]), 1e-12);
}

TEST(FeatureExtractorTest, RectangularPointLayout) {
  FeatureLayout layout = FeatureLayout::Paper();
  layout.space = CoordinateSpace::kRectangular;
  Rng rng(4);
  RealVec x = RandomRealVec(&rng, 32, 10.0, 90.0);
  FeatureExtractor extractor(layout);
  SeriesFeatures f = extractor.Extract(x);
  spatial::Point p = extractor.ToPoint(f);
  EXPECT_NEAR(p[2], f.spectrum[1].real(), 1e-12);
  EXPECT_NEAR(p[3], f.spectrum[1].imag(), 1e-12);
}

TEST(FeatureExtractorTest, AngularMaskMarksPhaseDims) {
  FeatureExtractor polar(FeatureLayout::Paper());
  std::vector<bool> mask = polar.AngularMask();
  ASSERT_EQ(mask.size(), 6u);
  EXPECT_FALSE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_FALSE(mask[2]);
  EXPECT_TRUE(mask[3]);
  EXPECT_FALSE(mask[4]);
  EXPECT_TRUE(mask[5]);

  FeatureExtractor rect(FeatureLayout::Agrawal(2));
  for (bool b : rect.AngularMask()) EXPECT_FALSE(b);
}

TEST(FeatureExtractorTest, StoredCoefficientsSliceIsCorrect) {
  FeatureExtractor extractor(FeatureLayout::Paper());
  ComplexVec spectrum = {Complex(0, 0), Complex(1, 1), Complex(2, 2),
                         Complex(3, 3)};
  ComplexVec stored = extractor.StoredCoefficients(spectrum);
  ASSERT_EQ(stored.size(), 2u);
  EXPECT_EQ(stored[0], Complex(1, 1));
  EXPECT_EQ(stored[1], Complex(2, 2));
}

TEST(FeatureExtractorTest, FromStoredReproducesExtractExactly) {
  // The shared helper behind Insert (Extract) and BuildIndex (FromStored
  // over the scanned relation): replaying a stored record's samples and
  // spectrum must reproduce the insert-time features bit for bit — mean
  // and std included, which both paths compute through one function.
  Rng rng(20260729);
  for (const FeatureLayout& layout :
       {FeatureLayout::Paper(), FeatureLayout::Agrawal(3),
        FeatureLayout::Haar(2)}) {
    FeatureExtractor extractor(layout);
    for (int rep = 0; rep < 8; ++rep) {
      const RealVec values = RandomRealVec(&rng, 16);
      const SeriesFeatures inserted = extractor.Extract(values);
      const SeriesFeatures rebuilt =
          extractor.FromStored(values, inserted.spectrum);
      EXPECT_EQ(rebuilt.mean, inserted.mean);
      EXPECT_EQ(rebuilt.std, inserted.std);
      ASSERT_EQ(rebuilt.spectrum.size(), inserted.spectrum.size());
      for (size_t i = 0; i < inserted.spectrum.size(); ++i) {
        EXPECT_EQ(rebuilt.spectrum[i], inserted.spectrum[i]);
      }
    }
  }
  // A flat series exercises the zero-variance convention.
  FeatureExtractor paper(FeatureLayout::Paper());
  const RealVec flat(16, 3.0);
  const SeriesFeatures a = paper.Extract(flat);
  const SeriesFeatures b = paper.FromStored(flat, a.spectrum);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.std, b.std);
}

// ---------------------------------------------------------------------------
// Search rectangles (Sec. 3.1)
// ---------------------------------------------------------------------------

TEST(SearchRectTest, RectangularIsPlusMinusEps) {
  // Bounds are eps plus the documented rounding slack (~1e-9).
  FeatureLayout layout = FeatureLayout::Agrawal(2);
  ComplexVec q = {Complex(1.0, 2.0), Complex(-3.0, 0.5)};
  spatial::Rect r = BuildSearchRect(layout, q, 0.25, std::nullopt);
  ASSERT_EQ(r.dims(), 4u);
  EXPECT_NEAR(r.lo(0), 0.75, 1e-8);
  EXPECT_NEAR(r.hi(0), 1.25, 1e-8);
  EXPECT_NEAR(r.lo(1), 1.75, 1e-8);
  EXPECT_NEAR(r.hi(3), 0.75, 1e-8);
}

TEST(SearchRectTest, PolarMagnitudeAndAngle) {
  // Fig. 7: magnitude in [m - eps, m + eps], angle in alpha +- asin(eps/m).
  FeatureLayout layout = FeatureLayout::Paper();
  layout.include_mean_std = false;
  layout.num_coefficients = 1;
  const Complex q = std::polar(2.0, 0.5);
  spatial::Rect r = BuildSearchRect(layout, {q}, 1.0, std::nullopt);
  ASSERT_EQ(r.dims(), 2u);
  EXPECT_NEAR(r.lo(0), 1.0, 1e-8);
  EXPECT_NEAR(r.hi(0), 3.0, 1e-8);
  const double theta = std::asin(1.0 / 2.0);
  EXPECT_NEAR(r.lo(1), 0.5 - theta, 1e-8);
  EXPECT_NEAR(r.hi(1), 0.5 + theta, 1e-8);
}

TEST(SearchRectTest, PolarDegenerateWhenEpsCoversOrigin) {
  // m <= eps: every phase is possible, magnitude clamps at zero.
  FeatureLayout layout = FeatureLayout::Paper();
  layout.include_mean_std = false;
  layout.num_coefficients = 1;
  const Complex q = std::polar(0.5, 1.0);
  spatial::Rect r = BuildSearchRect(layout, {q}, 1.0, std::nullopt);
  EXPECT_NEAR(r.lo(0), 0.0, 1e-8);
  EXPECT_NEAR(r.hi(0), 1.5, 1e-8);
  EXPECT_NEAR(r.lo(1), -kPi, 1e-12);
  EXPECT_NEAR(r.hi(1), kPi, 1e-12);
}

TEST(SearchRectTest, PolarAngleCrossingCutWidens) {
  FeatureLayout layout = FeatureLayout::Paper();
  layout.include_mean_std = false;
  layout.num_coefficients = 1;
  // alpha near +pi with a wide angular tolerance crosses the cut.
  const Complex q = std::polar(2.0, kPi - 0.1);
  spatial::Rect r = BuildSearchRect(layout, {q}, 1.0, std::nullopt);
  EXPECT_NEAR(r.lo(1), -kPi, 1e-12);
  EXPECT_NEAR(r.hi(1), kPi, 1e-12);
}

TEST(SearchRectTest, MeanStdWindowAppliedAndDefaultsUnbounded) {
  FeatureLayout layout = FeatureLayout::Paper();
  FeatureExtractor extractor(layout);
  ComplexVec coeffs = {Complex(1, 0), Complex(0, 1)};
  spatial::Rect unbounded = BuildSearchRect(layout, coeffs, 0.5, std::nullopt);
  EXPECT_TRUE(std::isinf(unbounded.lo(0)));
  EXPECT_TRUE(std::isinf(unbounded.hi(1)));

  MeanStdWindow window{10.0, 20.0, 0.5, 2.0};
  spatial::Rect bounded = BuildSearchRect(layout, coeffs, 0.5, window);
  EXPECT_EQ(bounded.lo(0), 10.0);
  EXPECT_EQ(bounded.hi(0), 20.0);
  EXPECT_EQ(bounded.lo(1), 0.5);
  EXPECT_EQ(bounded.hi(1), 2.0);
}

TEST(SearchRectTest, ContainsAllEpsCloseSpectraProperty) {
  // The defining property (no false dismissals at the rectangle level):
  // any coefficient vector within eps of q maps to a point inside the
  // search rect — in both coordinate spaces.
  Rng rng(5);
  for (const CoordinateSpace space :
       {CoordinateSpace::kRectangular, CoordinateSpace::kPolar}) {
    FeatureLayout layout;
    layout.space = space;
    layout.include_mean_std = false;
    layout.first_coefficient = 0;
    layout.num_coefficients = 3;
    FeatureExtractor extractor(layout);
    for (int trial = 0; trial < 200; ++trial) {
      ComplexVec q = testing::RandomComplexVec(&rng, 3, -5.0, 5.0);
      const double eps = rng.Uniform(0.01, 3.0);
      spatial::Rect rect = BuildSearchRect(layout, q, eps, std::nullopt);
      // Sample a vector within eps of q (uniform direction, radius <= eps).
      ComplexVec v = q;
      double norm = 0.0;
      ComplexVec delta = testing::RandomComplexVec(&rng, 3, -1.0, 1.0);
      for (const Complex& c : delta) norm += std::norm(c);
      norm = std::sqrt(norm);
      const double radius = rng.Uniform(0.0, eps) / (norm > 0 ? norm : 1.0);
      for (size_t i = 0; i < 3; ++i) v[i] += delta[i] * radius;
      spatial::Point p = extractor.ToPointFromCoefficients(v, 0.0, 0.0);
      EXPECT_TRUE(rect.Contains(p))
          << "space=" << static_cast<int>(space) << " eps=" << eps;
    }
  }
}

// ---------------------------------------------------------------------------
// FeatureTransform -> AffineMap lowering
// ---------------------------------------------------------------------------

TEST(FeatureSpaceTest, MovingAverageLowersInPolarNotRect) {
  const size_t n = 128;
  FeatureSpace polar(FeatureLayout::Paper());
  FeatureTransform t =
      FeatureTransform::Spectral(transforms::MovingAverage(n, 20));
  auto map = polar.ToAffineMap(t);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->dims(), 6u);
  // Magnitude dims scale by |a_f|; angle dims rotate by arg(a_f).
  LinearTransform spectral = transforms::MovingAverage(n, 20);
  EXPECT_NEAR(map->scale(2), std::abs(spectral.a()[1]), 1e-12);
  EXPECT_NEAR(map->offset(3), std::arg(spectral.a()[1]), 1e-12);
  EXPECT_EQ(map->scale(3), 1.0);
  EXPECT_TRUE(map->angular(3));

  FeatureLayout rect_layout = FeatureLayout::Paper();
  rect_layout.space = CoordinateSpace::kRectangular;
  FeatureSpace rect(rect_layout);
  EXPECT_TRUE(rect.ToAffineMap(t).status().IsInvalidArgument());
}

TEST(FeatureSpaceTest, ShiftLowersInRectNotPolar) {
  const size_t n = 128;
  FeatureLayout rect_layout = FeatureLayout::Agrawal(3);
  FeatureSpace rect(rect_layout);
  FeatureTransform t = FeatureTransform::Spectral(transforms::Shift(n, 5.0));
  auto map = rect.ToAffineMap(t);
  ASSERT_TRUE(map.ok());
  // Shift's b hits only X_0: offset on dims (0,1) = (Re, Im) of b_0.
  EXPECT_NEAR(map->offset(0), 5.0 * std::sqrt(128.0), 1e-9);
  EXPECT_NEAR(map->offset(1), 0.0, 1e-12);

  FeatureSpace polar(FeatureLayout::Paper());
  EXPECT_TRUE(polar.ToAffineMap(t).status().IsInvalidArgument());
}

TEST(FeatureSpaceTest, MeanStdDimensionsFollowTheTransform) {
  FeatureSpace space(FeatureLayout::Paper());
  FeatureTransform t = FeatureTransform::ShiftScale(128, 3.0, -2.0);
  auto map = space.ToAffineMap(t);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->scale(0), -2.0);   // mean scales by the factor
  EXPECT_EQ(map->offset(0), 3.0);   // and shifts by delta
  EXPECT_EQ(map->scale(1), 2.0);    // std scales by |factor|
  EXPECT_EQ(map->offset(1), 0.0);
  // The normal-form spectrum is untouched by shift/scale.
  EXPECT_EQ(map->scale(2), 1.0);
  EXPECT_EQ(map->offset(3), 0.0);
}

TEST(FeatureSpaceTest, TransformedPointMatchesTransformedSpectrumProperty) {
  // Lowering correctness: mapping the feature point == extracting features
  // of the transformed spectrum, for polar-safe transforms.
  Rng rng(6);
  FeatureSpace space(FeatureLayout::Paper());
  FeatureExtractor extractor(FeatureLayout::Paper());
  const size_t n = 64;
  LinearTransform spectral = transforms::MovingAverage(n, 7);
  FeatureTransform t = FeatureTransform::Spectral(spectral);
  auto map = space.ToAffineMap(t);
  ASSERT_TRUE(map.ok());
  for (int trial = 0; trial < 50; ++trial) {
    RealVec x = RandomRealVec(&rng, n, 10.0, 50.0);
    SeriesFeatures f = extractor.Extract(x);
    spatial::Point p = extractor.ToPoint(f);
    spatial::Point mapped = map->Apply(p);
    ComplexVec transformed = spectral.Apply(f.spectrum);
    spatial::Point expected = extractor.ToPointFromCoefficients(
        extractor.StoredCoefficients(transformed), f.mean, f.std);
    ASSERT_EQ(mapped.size(), expected.size());
    for (size_t d = 0; d < mapped.size(); ++d) {
      // Angles may legitimately differ when the magnitude is ~0.
      if (space.layout().space == CoordinateSpace::kPolar && (d == 3 || d == 5)
          && std::abs(expected[d - 1]) < 1e-12) {
        continue;
      }
      EXPECT_NEAR(mapped[d], expected[d], 1e-9) << "dim " << d;
    }
  }
}

TEST(FeatureSpaceTest, SpectralDistanceMatchesComplexDistance) {
  Rng rng(7);
  for (const CoordinateSpace space_kind :
       {CoordinateSpace::kRectangular, CoordinateSpace::kPolar}) {
    FeatureLayout layout = FeatureLayout::Paper();
    layout.space = space_kind;
    FeatureSpace space(layout);
    FeatureExtractor extractor(layout);
    for (int trial = 0; trial < 30; ++trial) {
      ComplexVec a = testing::RandomComplexVec(&rng, 2);
      ComplexVec b = testing::RandomComplexVec(&rng, 2);
      spatial::Point pa = extractor.ToPointFromCoefficients(a, 0, 1);
      spatial::Point pb = extractor.ToPointFromCoefficients(b, 5, 9);
      EXPECT_NEAR(space.SpectralDistance(pa, pb), cvec::Distance(a, b), 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Polar NN metric (annular sectors)
// ---------------------------------------------------------------------------

class PolarMetricTest : public ::testing::Test {
 protected:
  FeatureLayout MakeLayout() {
    FeatureLayout layout;
    layout.space = CoordinateSpace::kPolar;
    layout.include_mean_std = false;
    layout.first_coefficient = 0;
    layout.num_coefficients = 1;
    return layout;
  }
};

TEST_F(PolarMetricTest, ExactOnDegenerateRects) {
  FeatureLayout layout = MakeLayout();
  FeatureSpace space(layout);
  FeatureExtractor extractor(layout);
  Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    ComplexVec q = testing::RandomComplexVec(&rng, 1, -4.0, 4.0);
    ComplexVec v = testing::RandomComplexVec(&rng, 1, -4.0, 4.0);
    auto metric =
        space.MakeNnMetric(extractor.ToPointFromCoefficients(q, 0, 0));
    spatial::Rect point_rect = spatial::Rect::FromPoint(
        extractor.ToPointFromCoefficients(v, 0, 0));
    EXPECT_NEAR(std::sqrt(metric->MinDistSquared(point_rect)),
                std::abs(q[0] - v[0]), 1e-9);
  }
}

TEST_F(PolarMetricTest, LowerBoundsSampledSectorPointsProperty) {
  FeatureLayout layout = MakeLayout();
  FeatureSpace space(layout);
  FeatureExtractor extractor(layout);
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const double m0 = rng.Uniform(0.0, 3.0);
    const double m1 = m0 + rng.Uniform(0.0, 2.0);
    double t0 = rng.Uniform(-kPi, kPi);
    double t1 = t0 + rng.Uniform(0.0, kPi - 0.01);
    if (t1 > kPi) {  // keep the interval inside the canonical range
      const double shift = t1 - kPi;
      t0 -= shift;
      t1 = kPi;
    }
    spatial::Rect sector({m0, t0}, {m1, t1});
    ComplexVec q = testing::RandomComplexVec(&rng, 1, -4.0, 4.0);
    auto metric =
        space.MakeNnMetric(extractor.ToPointFromCoefficients(q, 0, 0));
    const double bound = metric->MinDistSquared(sector);
    for (int s = 0; s < 20; ++s) {
      const double r = rng.Uniform(m0, m1);
      const double theta = rng.Uniform(t0, t1);
      const Complex v = std::polar(r, theta);
      const double actual = std::norm(q[0] - v);
      EXPECT_LE(bound, actual + 1e-9)
          << "sector [" << m0 << "," << m1 << "]x[" << t0 << "," << t1
          << "] q=" << q[0];
    }
  }
}

TEST_F(PolarMetricTest, ZeroForContainedQuery) {
  FeatureLayout layout = MakeLayout();
  FeatureSpace space(layout);
  FeatureExtractor extractor(layout);
  const Complex q = std::polar(2.0, 0.3);
  auto metric = space.MakeNnMetric(extractor.ToPointFromCoefficients({q}, 0, 0));
  spatial::Rect sector({1.0, 0.0}, {3.0, 1.0});
  EXPECT_EQ(metric->MinDistSquared(sector), 0.0);
}

TEST_F(PolarMetricTest, FullCircleSectorIsRadialGap) {
  FeatureLayout layout = MakeLayout();
  FeatureSpace space(layout);
  FeatureExtractor extractor(layout);
  const Complex q = std::polar(5.0, 1.0);
  auto metric = space.MakeNnMetric(extractor.ToPointFromCoefficients({q}, 0, 0));
  spatial::Rect annulus({1.0, -kPi}, {2.0, kPi});
  EXPECT_NEAR(std::sqrt(metric->MinDistSquared(annulus)), 3.0, 1e-9);
  spatial::Rect containing({4.0, -kPi}, {6.0, kPi});
  EXPECT_EQ(metric->MinDistSquared(containing), 0.0);
}

}  // namespace
}  // namespace tsq

namespace tsq {
namespace {

// ---------------------------------------------------------------------------
// Join predicate geometry (tree-match join pruning bound)
// ---------------------------------------------------------------------------

class JoinPredicateTest : public ::testing::Test {
 protected:
  FeatureLayout PolarLayout() {
    FeatureLayout layout;
    layout.space = CoordinateSpace::kPolar;
    layout.include_mean_std = false;
    layout.first_coefficient = 0;
    layout.num_coefficients = 1;
    return layout;
  }
};

TEST_F(JoinPredicateTest, RectSpaceLowerBoundsSampledPairsProperty) {
  FeatureLayout layout = FeatureLayout::Agrawal(2);
  FeatureSpace space(layout);
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    spatial::Rect a = testing::RandomRect(&rng, 4, -10.0, 10.0);
    spatial::Rect b = testing::RandomRect(&rng, 4, -10.0, 10.0);
    const double bound = space.MinSpectralDistanceBetweenRects(a, b);
    for (int s = 0; s < 10; ++s) {
      spatial::Point pa(4), pb(4);
      for (size_t d = 0; d < 4; ++d) {
        pa[d] = rng.Uniform(a.lo(d), a.hi(d));
        pb[d] = rng.Uniform(b.lo(d), b.hi(d));
      }
      EXPECT_LE(bound, space.SpectralDistance(pa, pb) + 1e-9);
    }
  }
}

TEST_F(JoinPredicateTest, PolarSectorBoundLowerBoundsSampledPairsProperty) {
  FeatureSpace space(PolarLayout());
  Rng rng(42);
  constexpr double kPiLocal = 3.14159265358979323846;
  auto random_sector = [&rng, kPiLocal]() {
    const double m0 = rng.Uniform(0.0, 3.0);
    const double m1 = m0 + rng.Uniform(0.0, 2.0);
    double t0 = rng.Uniform(-kPiLocal, kPiLocal - 0.02);
    double t1 = std::min(kPiLocal, t0 + rng.Uniform(0.0, kPiLocal));
    return spatial::Rect({m0, t0}, {m1, t1});
  };
  for (int trial = 0; trial < 200; ++trial) {
    spatial::Rect a = random_sector();
    spatial::Rect b = random_sector();
    const double bound = space.MinSpectralDistanceBetweenRects(a, b);
    for (int s = 0; s < 10; ++s) {
      const Complex ca =
          std::polar(rng.Uniform(a.lo(0), a.hi(0)),
                     rng.Uniform(a.lo(1), a.hi(1)));
      const Complex cb =
          std::polar(rng.Uniform(b.lo(0), b.hi(0)),
                     rng.Uniform(b.lo(1), b.hi(1)));
      EXPECT_LE(bound, std::abs(ca - cb) + 1e-9)
          << "a=" << a.ToString() << " b=" << b.ToString();
    }
  }
}

TEST_F(JoinPredicateTest, DegenerateSectorsGiveNearExactDistances) {
  // Point sectors reduce to Cartesian boxes of single points; the bound
  // becomes the exact complex distance.
  FeatureSpace space(PolarLayout());
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const Complex ca(rng.Uniform(-3, 3), rng.Uniform(-3, 3));
    const Complex cb(rng.Uniform(-3, 3), rng.Uniform(-3, 3));
    FeatureExtractor extractor(PolarLayout());
    spatial::Rect a = spatial::Rect::FromPoint(
        extractor.ToPointFromCoefficients({ca}, 0, 0));
    spatial::Rect b = spatial::Rect::FromPoint(
        extractor.ToPointFromCoefficients({cb}, 0, 0));
    EXPECT_NEAR(space.MinSpectralDistanceBetweenRects(a, b),
                std::abs(ca - cb), 1e-9);
  }
}

TEST_F(JoinPredicateTest, PredicateAcceptsOverlapsRejectsFarApart) {
  FeatureSpace space(PolarLayout());
  auto pred = space.MakeJoinPredicate(0.5);
  // Two identical sectors: distance 0, must accept.
  spatial::Rect a({1.0, 0.0}, {2.0, 1.0});
  EXPECT_TRUE(pred(a, a));
  // Far-apart magnitudes: must reject.
  spatial::Rect far({10.0, 0.0}, {11.0, 1.0});
  EXPECT_FALSE(pred(a, far));
}

}  // namespace
}  // namespace tsq
