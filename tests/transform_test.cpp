// Copyright (c) 2026 The tsq Authors.
//
// Tests for the transformation framework: the (a, b) algebra, safety
// predicates (Theorems 2/3), every built-in transformation against its
// time-domain ground truth (moving average == circular convolution,
// reverse == negation, shift/scale, Appendix A time warp), and the Eq. 10
// cost-bounded distance.

#include <cmath>

#include "common/random.h"
#include "dft/dft.h"
#include "gtest/gtest.h"
#include "series/distance.h"
#include "series/moving_average.h"
#include "series/normal_form.h"
#include "series/warp.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "transform/cost_model.h"
#include "transform/linear_transform.h"

namespace tsq {
namespace {

using testing::ExpectComplexNear;
using testing::ExpectRealNear;
using testing::RandomComplexVec;
using testing::RandomRealVec;

// ---------------------------------------------------------------------------
// LinearTransform algebra
// ---------------------------------------------------------------------------

TEST(LinearTransformTest, IdentityLeavesVectorsUnchanged) {
  Rng rng(1);
  ComplexVec x = RandomComplexVec(&rng, 16);
  LinearTransform id = LinearTransform::Identity(16);
  EXPECT_TRUE(id.IsIdentity());
  ExpectComplexNear(id.Apply(x), x, 0.0);
  EXPECT_EQ(id.cost(), 0.0);
  EXPECT_EQ(id.name(), "identity");
}

TEST(LinearTransformTest, ApplyComputesAxPlusB) {
  LinearTransform t({Complex(2, 0), Complex(0, 1)},
                    {Complex(1, 0), Complex(0, -1)});
  ComplexVec x = {Complex(3, 0), Complex(1, 1)};
  ComplexVec y = t.Apply(x);
  EXPECT_EQ(y[0], Complex(7, 0));           // 2*3 + 1
  EXPECT_EQ(y[1], Complex(-1, 0));          // i*(1+i) - i = -1 + i - i
}

TEST(LinearTransformTest, ApplyPrefixMatchesTruncatedApply) {
  Rng rng(2);
  ComplexVec a = RandomComplexVec(&rng, 12);
  ComplexVec b = RandomComplexVec(&rng, 12);
  LinearTransform t(a, b);
  ComplexVec x = RandomComplexVec(&rng, 12);
  ComplexVec full = t.Apply(x);
  ComplexVec prefix = t.ApplyPrefix(x, 5);
  ASSERT_EQ(prefix.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(prefix[i], full[i]);

  LinearTransform trunc = t.Truncated(5);
  EXPECT_EQ(trunc.size(), 5u);
  ExpectComplexNear(trunc.Apply(ComplexVec(x.begin(), x.begin() + 5)), prefix,
                    1e-12);
}

TEST(LinearTransformTest, ComposeMatchesSequentialApplication) {
  Rng rng(3);
  LinearTransform f(RandomComplexVec(&rng, 8), RandomComplexVec(&rng, 8), 1.5,
                    "f");
  LinearTransform g(RandomComplexVec(&rng, 8), RandomComplexVec(&rng, 8), 2.0,
                    "g");
  ComplexVec x = RandomComplexVec(&rng, 8);
  ExpectComplexNear(f.Compose(g).Apply(x), f.Apply(g.Apply(x)), 1e-9);
  EXPECT_EQ(f.Compose(g).cost(), 3.5);
}

TEST(LinearTransformTest, SafetyPredicates) {
  const size_t n = 8;
  // Real a, complex b: safe in Srect, unsafe in Spol (b != 0).
  LinearTransform rect_safe(ComplexVec(n, Complex(2.0, 0.0)),
                            ComplexVec(n, Complex(1.0, 1.0)));
  EXPECT_TRUE(rect_safe.IsSafeRect());
  EXPECT_FALSE(rect_safe.IsSafePolar());
  // Complex a, zero b: safe in Spol, unsafe in Srect.
  LinearTransform polar_safe(ComplexVec(n, Complex(1.0, 2.0)),
                             ComplexVec(n, Complex(0.0, 0.0)));
  EXPECT_FALSE(polar_safe.IsSafeRect());
  EXPECT_TRUE(polar_safe.IsSafePolar());
  // Real a, zero b: safe in both (Theorem 1 territory).
  LinearTransform both(ComplexVec(n, Complex(-1.0, 0.0)),
                       ComplexVec(n, Complex(0.0, 0.0)));
  EXPECT_TRUE(both.IsSafeRect());
  EXPECT_TRUE(both.IsSafePolar());
}

TEST(LinearTransformTest, TheoremTwoCounterexample) {
  // The paper's counterexample after Theorem 2: multiplying by s = 2 - 3i
  // does not preserve rectangle membership in Srect. Point r is inside the
  // rectangle [p, q] but s*r is outside [s*p, s*q] (after corner repair).
  const Complex p(-5, -5), q(5, 5), r(-2, 2), s(2, -3);
  const Complex pp = p * s, qq = q * s, rr = r * s;
  const double lo_re = std::min(pp.real(), qq.real());
  const double hi_re = std::max(pp.real(), qq.real());
  const double lo_im = std::min(pp.imag(), qq.imag());
  const double hi_im = std::max(pp.imag(), qq.imag());
  const bool inside = rr.real() >= lo_re && rr.real() <= hi_re &&
                      rr.imag() >= lo_im && rr.imag() <= hi_im;
  EXPECT_FALSE(inside);  // r*s = 2+10i escapes the transformed rectangle
}

// ---------------------------------------------------------------------------
// Built-in transformations vs time-domain ground truth
// ---------------------------------------------------------------------------

class MovingAverageTransformTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MovingAverageTransformTest, FrequencyDomainEqualsTimeDomain) {
  // Sec. 3.2: applying Tmavg in the frequency domain and transforming back
  // equals the circular moving average in the time domain.
  const size_t window = GetParam();
  Rng rng(window + 100);
  const size_t n = 32;
  RealVec x = RandomRealVec(&rng, n);
  LinearTransform t = transforms::MovingAverage(n, window);
  RealVec via_freq = dft::InverseReal(t.Apply(dft::Forward(x)));
  ExpectRealNear(via_freq, CircularMovingAverage(x, window), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Windows, MovingAverageTransformTest,
                         ::testing::Values(1, 2, 3, 5, 8, 20, 32));

TEST(BuiltinTransformTest, MovingAverageIsPolarSafe) {
  LinearTransform t = transforms::MovingAverage(128, 20);
  EXPECT_TRUE(t.IsSafePolar());
  EXPECT_FALSE(t.IsSafeRect());  // transfer function is genuinely complex
  EXPECT_EQ(t.name(), "mavg20");
}

TEST(BuiltinTransformTest, PaperExampleM3TransferFunction) {
  // Sec. 3.2 uses ~m3 = (1/3, 1/3, 1/3, 0, ..., 0) of length 15; Tmavg3's
  // `a` is its (unscaled) DFT. Check a few closed-form values.
  LinearTransform t = transforms::MovingAverage(15, 3);
  // a_0 = sum of kernel = 1.
  EXPECT_NEAR(t.a()[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(t.a()[0].imag(), 0.0, 1e-12);
  // |a_f| = |sin(3 pi f / 15)| / (3 |sin(pi f / 15)|).
  for (size_t f = 1; f < 15; ++f) {
    const double num = std::abs(std::sin(3.0 * M_PI * f / 15.0));
    const double den = 3.0 * std::abs(std::sin(M_PI * f / 15.0));
    EXPECT_NEAR(std::abs(t.a()[f]), num / den, 1e-9) << "f=" << f;
  }
}

TEST(BuiltinTransformTest, WeightedMovingAverageMatchesTimeDomain) {
  Rng rng(5);
  const size_t n = 24;
  RealVec x = RandomRealVec(&rng, n);
  const RealVec weights = {0.5, 0.3, 0.2};  // trailing-weighted smoothing
  LinearTransform t = transforms::WeightedMovingAverage(n, weights);
  RealVec via_freq = dft::InverseReal(t.Apply(dft::Forward(x)));
  ExpectRealNear(via_freq, CircularWeightedMovingAverage(x, weights), 1e-8);
}

TEST(BuiltinTransformTest, SuccessiveMovingAverageMatchesRepeated) {
  Rng rng(6);
  const size_t n = 30;
  RealVec x = RandomRealVec(&rng, n);
  LinearTransform t = transforms::SuccessiveMovingAverage(n, 5, 3);
  RealVec via_freq = dft::InverseReal(t.Apply(dft::Forward(x)));
  ExpectRealNear(via_freq, SuccessiveCircularMovingAverage(x, 5, 3), 1e-8);
}

TEST(BuiltinTransformTest, ReverseNegatesInTimeDomain) {
  // Ex. 2.2 / Sec. 3.2: Trev applied in frequency space == multiplying
  // every closing price by -1.
  Rng rng(7);
  const size_t n = 40;
  RealVec x = RandomRealVec(&rng, n);
  LinearTransform t = transforms::Reverse(n);
  RealVec via_freq = dft::InverseReal(t.Apply(dft::Forward(x)));
  RealVec negated(n);
  for (size_t i = 0; i < n; ++i) negated[i] = -x[i];
  ExpectRealNear(via_freq, negated, 1e-9);
  EXPECT_TRUE(t.IsSafeRect());
  EXPECT_TRUE(t.IsSafePolar());
}

TEST(BuiltinTransformTest, ShiftAddsConstantInTimeDomain) {
  Rng rng(8);
  const size_t n = 20;
  RealVec x = RandomRealVec(&rng, n);
  LinearTransform t = transforms::Shift(n, 7.5);
  RealVec via_freq = dft::InverseReal(t.Apply(dft::Forward(x)));
  RealVec shifted(n);
  for (size_t i = 0; i < n; ++i) shifted[i] = x[i] + 7.5;
  ExpectRealNear(via_freq, shifted, 1e-9);
  EXPECT_TRUE(t.IsSafeRect());
  EXPECT_FALSE(t.IsSafePolar());  // b != 0
}

TEST(BuiltinTransformTest, ScaleMultipliesInTimeDomain) {
  Rng rng(9);
  const size_t n = 20;
  RealVec x = RandomRealVec(&rng, n);
  for (double factor : {2.0, -0.5}) {  // negative scales explicitly allowed
    LinearTransform t = transforms::Scale(n, factor);
    RealVec via_freq = dft::InverseReal(t.Apply(dft::Forward(x)));
    RealVec scaled(n);
    for (size_t i = 0; i < n; ++i) scaled[i] = factor * x[i];
    ExpectRealNear(via_freq, scaled, 1e-9);
    EXPECT_TRUE(t.IsSafeRect());
    EXPECT_TRUE(t.IsSafePolar());
  }
}

// --- time warp (Appendix A) ------------------------------------------------

class TimeWarpTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(TimeWarpTest, UnitaryConventionMatchesStretchedSpectrum) {
  // a_f * S_f must equal the f-th unitary DFT coefficient of the m-fold
  // stretched series, for all indexed f.
  const auto [n, m] = GetParam();
  Rng rng(n * 31 + m);
  const size_t k = std::min<size_t>(n, 6);
  RealVec x = RandomRealVec(&rng, n);
  ComplexVec S = dft::Forward(x);
  ComplexVec S_warped = dft::Forward(StretchTime(x, m));

  LinearTransform t =
      transforms::TimeWarp(n, m, k, transforms::WarpConvention::kUnitary);
  ComplexVec predicted = t.Apply(S);
  for (size_t f = 0; f < k; ++f) {
    EXPECT_NEAR(predicted[f].real(), S_warped[f].real(), 1e-8)
        << "f=" << f << " n=" << n << " m=" << m;
    EXPECT_NEAR(predicted[f].imag(), S_warped[f].imag(), 1e-8)
        << "f=" << f << " n=" << n << " m=" << m;
  }
}

TEST_P(TimeWarpTest, PaperConventionDiffersBySqrtM) {
  const auto [n, m] = GetParam();
  const size_t k = std::min<size_t>(n, 6);
  LinearTransform paper =
      transforms::TimeWarp(n, m, k, transforms::WarpConvention::kPaper);
  LinearTransform unitary =
      transforms::TimeWarp(n, m, k, transforms::WarpConvention::kUnitary);
  for (size_t f = 0; f < k; ++f) {
    EXPECT_NEAR(std::abs(paper.a()[f]),
                std::abs(unitary.a()[f]) * std::sqrt(static_cast<double>(m)),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TimeWarpTest,
    ::testing::Combine(::testing::Values(4, 8, 15, 32),
                       ::testing::Values(1, 2, 3, 5)));

TEST(TimeWarpTest, PaperFigure2Example) {
  // Ex. 1.2 / Appendix A: the warp transform maps ~p's coefficients onto
  // ~s's coefficients (m = 2, n = 4).
  const RealVec p = {20, 21, 20, 23};
  const RealVec s = StretchTime(p, 2);
  ComplexVec P = dft::Forward(p);
  ComplexVec S = dft::Forward(s);
  LinearTransform t =
      transforms::TimeWarp(4, 2, 4, transforms::WarpConvention::kUnitary);
  ComplexVec predicted = t.Apply(P);
  for (size_t f = 0; f < 4; ++f) {
    EXPECT_NEAR(predicted[f].real(), S[f].real(), 1e-9);
    EXPECT_NEAR(predicted[f].imag(), S[f].imag(), 1e-9);
  }
  EXPECT_TRUE(t.IsSafePolar());
}

TEST(TimeWarpTest, WarpFactorOneIsIdentityOnPrefix) {
  LinearTransform t =
      transforms::TimeWarp(16, 1, 8, transforms::WarpConvention::kUnitary);
  for (size_t f = 0; f < 8; ++f) {
    EXPECT_NEAR(t.a()[f].real(), 1.0, 1e-12);
    EXPECT_NEAR(t.a()[f].imag(), 0.0, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Eq. 10 cost-bounded distance
// ---------------------------------------------------------------------------

TEST(CostedDistanceTest, NoTransformsReducesToEuclidean) {
  Rng rng(10);
  ComplexVec x = RandomComplexVec(&rng, 8);
  ComplexVec y = RandomComplexVec(&rng, 8);
  auto result = CostedDistance(x, y, {});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, cvec::Distance(x, y), 1e-12);
  EXPECT_TRUE(result->applied_to_x.empty());
  EXPECT_TRUE(result->applied_to_y.empty());
}

TEST(CostedDistanceTest, ReverseBringsOppositesTogether) {
  // x and -x are far apart, but one application of Trev (cost 1) makes
  // them identical: D = 1 + 0.
  Rng rng(11);
  const size_t n = 16;
  RealVec xs = RandomRealVec(&rng, n);
  ComplexVec x = dft::Forward(xs);
  ComplexVec y = x;
  for (Complex& c : y) c = -c;
  ASSERT_GT(cvec::Distance(x, y), 2.0);

  auto result = CostedDistance(x, y, {transforms::Reverse(n, 1.0)});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, 1.0, 1e-9);
  EXPECT_NEAR(result->transform_cost, 1.0, 1e-9);
  EXPECT_EQ(result->applied_to_x.size() + result->applied_to_y.size(), 1u);
}

TEST(CostedDistanceTest, PrefersCheaperOfTwoRoutes) {
  // Two transforms fix the mismatch: an expensive exact one and a cheap
  // partial one. The search must pick the cheaper total.
  const size_t n = 8;
  ComplexVec x(n, Complex(1.0, 0.0));
  ComplexVec y(n, Complex(2.0, 0.0));
  LinearTransform expensive = transforms::Scale(n, 2.0, /*cost=*/5.0);
  LinearTransform cheap = transforms::Scale(n, 2.0, /*cost=*/0.25);
  auto result = CostedDistance(x, y, {expensive, cheap});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, 0.25, 1e-9);
}

TEST(CostedDistanceTest, RespectsCostBudget) {
  const size_t n = 8;
  ComplexVec x(n, Complex(1.0, 0.0));
  ComplexVec y(n, Complex(-1.0, 0.0));
  const double d0 = cvec::Distance(x, y);
  CostedDistanceOptions options;
  options.cost_budget = 0.5;  // reverse costs 1.0: out of budget
  auto result = CostedDistance(x, y, {transforms::Reverse(n, 1.0)}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, d0, 1e-9);  // falls back to D0
}

TEST(CostedDistanceTest, AppliesTransformsToBothSides) {
  // x needs smoothing AND y needs smoothing: T1(x), T2(y) branch of Eq. 10.
  Rng rng(12);
  const size_t n = 32;
  RealVec base = RandomRealVec(&rng, n);
  RealVec noisy_a(n);
  RealVec noisy_b(n);
  for (size_t i = 0; i < n; ++i) {
    noisy_a[i] = base[i] + rng.Uniform(-1.0, 1.0);
    noisy_b[i] = base[i] + rng.Uniform(-1.0, 1.0);
  }
  ComplexVec x = dft::Forward(noisy_a);
  ComplexVec y = dft::Forward(noisy_b);
  LinearTransform smooth = transforms::MovingAverage(n, 8, /*cost=*/0.1);
  auto result = CostedDistance(x, y, {smooth});
  ASSERT_TRUE(result.ok());
  // Smoothing both sides beats D0 and beats smoothing one side.
  EXPECT_LT(result->distance, cvec::Distance(x, y));
  // The optimum smooths BOTH sides (possibly more than once per side when
  // the extra cost pays for itself).
  EXPECT_GE(result->applied_to_x.size(), 1u);
  EXPECT_GE(result->applied_to_y.size(), 1u);
}

TEST(CostedDistanceTest, ValidatesArguments) {
  ComplexVec x(4), y(5);
  EXPECT_TRUE(CostedDistance(x, y, {}).status().IsInvalidArgument());
  ComplexVec z(4);
  EXPECT_TRUE(CostedDistance(x, z, {transforms::Reverse(8)})
                  .status()
                  .IsInvalidArgument());
  LinearTransform negative_cost = transforms::Reverse(4, -1.0);
  EXPECT_TRUE(CostedDistance(x, z, {negative_cost})
                  .status()
                  .IsInvalidArgument());
}

TEST(CostedDistanceTest, MaxStatesGuardTrips) {
  Rng rng(13);
  ComplexVec x = RandomComplexVec(&rng, 4);
  ComplexVec y = RandomComplexVec(&rng, 4);
  CostedDistanceOptions options;
  options.max_states = 2;
  options.max_applications_per_side = 4;
  std::vector<LinearTransform> many;
  for (int i = 0; i < 6; ++i) many.push_back(transforms::Reverse(4, 0.0));
  EXPECT_TRUE(CostedDistance(x, y, many, options)
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace tsq

namespace tsq {
namespace {

// ---------------------------------------------------------------------------
// Exponential moving average (EWMA)
// ---------------------------------------------------------------------------

TEST(EwmaTest, WeightsDecayGeometricallyAndSumToOne) {
  RealVec w = ExponentialWeights(0.5, 4);
  ASSERT_EQ(w.size(), 4u);
  double sum = 0.0;
  for (size_t d = 0; d < 4; ++d) {
    sum += w[d];
    if (d > 0) {
      EXPECT_NEAR(w[d] / w[d - 1], 0.5, 1e-12);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(EwmaTest, AlphaOneIsIdentityWindow) {
  RealVec w = ExponentialWeights(1.0, 5);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  for (size_t d = 1; d < 5; ++d) EXPECT_NEAR(w[d], 0.0, 1e-12);
}

TEST(EwmaTest, TransformMatchesTimeDomainWeightedAverage) {
  Rng rng(91);
  const size_t n = 48;
  RealVec x = testing::RandomRealVec(&rng, n);
  LinearTransform t = transforms::ExponentialMovingAverage(n, 0.3, 10);
  RealVec via_freq = dft::InverseReal(t.Apply(dft::Forward(x)));
  RealVec expected =
      CircularWeightedMovingAverage(x, ExponentialWeights(0.3, 10));
  testing::ExpectRealNear(via_freq, expected, 1e-8);
  EXPECT_TRUE(t.IsSafePolar());
  EXPECT_EQ(t.name(), "ewma10");
}

TEST(EwmaTest, SmoothsLessAggressivelyThanUniformWindow) {
  // EWMA front-loads the weight, so it tracks recent values more closely
  // than the uniform window of the same length: its output stays nearer
  // the raw series.
  Rng rng(92);
  const size_t n = 128;
  RealVec x = testing::RandomRealVec(&rng, n);
  RealVec ewma = CircularWeightedMovingAverage(x, ExponentialWeights(0.4, 20));
  RealVec uniform = CircularMovingAverage(x, 20);
  EXPECT_LT(EuclideanDistance(ewma, x), EuclideanDistance(uniform, x));
}

}  // namespace
}  // namespace tsq
