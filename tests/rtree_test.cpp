// Copyright (c) 2026 The tsq Authors.
//
// Tests for the R-tree family: structural invariants under bulk inserts
// and deletes, exact agreement with brute force for range and NN queries,
// on-the-fly transformed search (Algorithm 1/2), and persistence — all
// parameterized over the three split algorithms and the forced-reinsert
// policy.

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "rtree/node.h"
#include "rtree/rstar_tree.h"
#include "rtree/split.h"
#include "spatial/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "core/database.h"
#include "workload/random_walk.h"
#include "test_util.h"

namespace tsq {
namespace rtree {
namespace {

using spatial::AffineMap;
using spatial::Point;
using spatial::Rect;
using tsq::testing::RandomPoint;
using tsq::testing::TempDir;

// ---------------------------------------------------------------------------
// Node serialization
// ---------------------------------------------------------------------------

TEST(NodeTest, CapacityFormula) {
  // 4096-byte pages, 6 dims: (4096 - 16) / (16*6 + 8) = 39 entries.
  EXPECT_EQ(NodeCapacity(4096, 6), 39u);
  EXPECT_EQ(NodeCapacity(4096, 2), 102u);
  EXPECT_GE(NodeCapacity(4096, 20), 4u);
  EXPECT_EQ(NodeCapacity(8, 2), 0u);
}

TEST(NodeTest, SerializeDeserializeRoundTrip) {
  const size_t dims = 3;
  Node node;
  node.level = 2;
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    Entry e;
    e.rect = tsq::testing::RandomRect(&rng, dims);
    e.id = 1000 + i;
    node.entries.push_back(e);
  }
  Page page(4096);
  ASSERT_TRUE(SerializeNode(node, dims, &page).ok());
  Node back;
  ASSERT_TRUE(DeserializeNode(page, dims, &back).ok());
  EXPECT_EQ(back.level, 2u);
  ASSERT_EQ(back.entries.size(), node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].rect, node.entries[i].rect);
    EXPECT_EQ(back.entries[i].id, node.entries[i].id);
  }
}

TEST(NodeTest, SerializeRejectsOverfullNode) {
  const size_t dims = 6;
  Node node;
  node.level = 0;
  for (size_t i = 0; i < NodeCapacity(4096, dims) + 1; ++i) {
    Entry e;
    e.rect = Rect::FromPoint(Point(dims, 0.0));
    node.entries.push_back(e);
  }
  Page page(4096);
  EXPECT_TRUE(SerializeNode(node, dims, &page).IsInvalidArgument());
}

TEST(NodeTest, DeserializeRejectsGarbage) {
  Page page(4096);
  Node node;
  EXPECT_TRUE(DeserializeNode(page, 3, &node).IsCorruption());
}

TEST(NodeTest, BoundingRectCoversAllEntries) {
  Node node;
  node.level = 0;
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    Entry e;
    e.rect = tsq::testing::RandomRect(&rng, 4);
    node.entries.push_back(e);
  }
  const Rect mbr = node.BoundingRect();
  for (const Entry& e : node.entries) {
    EXPECT_TRUE(mbr.ContainsRect(e.rect));
  }
}

// ---------------------------------------------------------------------------
// Split algorithms (pure functions)
// ---------------------------------------------------------------------------

class SplitTest : public ::testing::TestWithParam<SplitAlgorithm> {};

TEST_P(SplitTest, PartitionsAllEntriesRespectingMinFill) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t total = 10 + static_cast<size_t>(rng.UniformInt(0, 30));
    const size_t min_fill = std::max<size_t>(1, total * 2 / 5);
    std::vector<Entry> entries;
    std::set<uint64_t> ids;
    for (size_t i = 0; i < total; ++i) {
      Entry e;
      e.rect = tsq::testing::RandomRect(&rng, 3);
      e.id = i;
      ids.insert(i);
      entries.push_back(e);
    }
    SplitResult split = SplitEntries(GetParam(), entries, min_fill);
    EXPECT_GE(split.left.size(), min_fill);
    EXPECT_GE(split.right.size(), min_fill);
    EXPECT_EQ(split.left.size() + split.right.size(), total);
    std::set<uint64_t> seen;
    for (const Entry& e : split.left) seen.insert(e.id);
    for (const Entry& e : split.right) seen.insert(e.id);
    EXPECT_EQ(seen, ids);  // no loss, no duplication
  }
}

TEST_P(SplitTest, SeparatesTwoObviousClusters) {
  // Two tight clusters far apart: any sane split keeps clusters intact.
  Rng rng(10);
  std::vector<Entry> entries;
  for (int i = 0; i < 8; ++i) {
    Entry e;
    const double base = (i < 4) ? 0.0 : 1000.0;
    Point p{base + rng.Uniform(0, 1), base + rng.Uniform(0, 1)};
    e.rect = Rect::FromPoint(p);
    e.id = i;
    entries.push_back(e);
  }
  SplitResult split = SplitEntries(GetParam(), entries, 2);
  auto side_of = [](const Entry& e) { return e.rect.lo(0) > 500.0; };
  const bool left_side = side_of(split.left[0]);
  for (const Entry& e : split.left) EXPECT_EQ(side_of(e), left_side);
  for (const Entry& e : split.right) EXPECT_EQ(side_of(e), !left_side);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SplitTest,
                         ::testing::Values(SplitAlgorithm::kRStar,
                                           SplitAlgorithm::kGuttmanQuadratic,
                                           SplitAlgorithm::kGuttmanLinear));

// ---------------------------------------------------------------------------
// Tree fixture, parameterized over (split, forced_reinsert)
// ---------------------------------------------------------------------------

struct TreeConfig {
  SplitAlgorithm split;
  bool forced_reinsert;
};

class RTreeParamTest
    : public ::testing::TestWithParam<std::tuple<SplitAlgorithm, bool>> {
 protected:
  void SetUp() override {
    auto pf = PageFile::Create(dir_.file("tree.pages"));
    ASSERT_TRUE(pf.ok());
    file_ = std::move(*pf);
    pool_ = std::make_unique<BufferPool>(file_.get(), 128);
  }

  std::unique_ptr<RStarTree> MakeTree(size_t dims,
                                      size_t max_entries_override = 8) {
    RTreeOptions options;
    options.split = std::get<0>(GetParam());
    options.forced_reinsert = std::get<1>(GetParam());
    options.max_entries_override = max_entries_override;  // deep trees
    auto tree = RStarTree::Create(pool_.get(), dims, options);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return std::move(*tree);
  }

  TempDir dir_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_P(RTreeParamTest, EmptyTreeBasics) {
  auto tree = MakeTree(2);
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  int hits = 0;
  ASSERT_TRUE(tree->Search(Rect({-1e9, -1e9}, {1e9, 1e9}),
                           [&hits](uint64_t, const Rect&) {
                             ++hits;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(hits, 0);
  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;
}

TEST_P(RTreeParamTest, InsertManyAndSearchMatchesBruteForce) {
  const size_t dims = 3;
  auto tree = MakeTree(dims);
  Rng rng(11);
  std::vector<Point> points;
  for (uint64_t i = 0; i < 500; ++i) {
    Point p = RandomPoint(&rng, dims, 0.0, 100.0);
    ASSERT_TRUE(tree->InsertPoint(p, i).ok());
    points.push_back(std::move(p));
  }
  EXPECT_EQ(tree->size(), 500u);
  EXPECT_GT(tree->height(), 1u);

  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;

  for (int q = 0; q < 25; ++q) {
    Rect query = tsq::testing::RandomRect(&rng, dims, 0.0, 100.0);
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < points.size(); ++i) {
      if (query.Contains(points[i])) expected.insert(i);
    }
    std::set<uint64_t> actual;
    ASSERT_TRUE(tree->Search(query,
                             [&actual](uint64_t id, const Rect&) {
                               actual.insert(id);
                               return true;
                             })
                    .ok());
    EXPECT_EQ(actual, expected) << "query " << query.ToString();
  }
}

TEST_P(RTreeParamTest, RectangleEntriesSearch) {
  // Rect (non-point) data: overlap semantics.
  const size_t dims = 2;
  auto tree = MakeTree(dims);
  Rng rng(12);
  std::vector<Rect> rects;
  for (uint64_t i = 0; i < 300; ++i) {
    Point lo = RandomPoint(&rng, dims, 0.0, 90.0);
    Point hi = lo;
    for (size_t d = 0; d < dims; ++d) hi[d] += rng.Uniform(0.0, 10.0);
    Rect r(lo, hi);
    ASSERT_TRUE(tree->Insert(r, i).ok());
    rects.push_back(std::move(r));
  }
  for (int q = 0; q < 20; ++q) {
    Rect query = tsq::testing::RandomRect(&rng, dims, 0.0, 100.0);
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < rects.size(); ++i) {
      if (query.Intersects(rects[i])) expected.insert(i);
    }
    std::set<uint64_t> actual;
    ASSERT_TRUE(tree->Search(query,
                             [&actual](uint64_t id, const Rect&) {
                               actual.insert(id);
                               return true;
                             })
                    .ok());
    EXPECT_EQ(actual, expected);
  }
}

TEST_P(RTreeParamTest, DuplicatePointsAreAllRetrievable) {
  auto tree = MakeTree(2);
  const Point p{5.0, 5.0};
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree->InsertPoint(p, i).ok());
  }
  std::set<uint64_t> actual;
  ASSERT_TRUE(tree->Search(Rect({4.0, 4.0}, {6.0, 6.0}),
                           [&actual](uint64_t id, const Rect&) {
                             actual.insert(id);
                             return true;
                           })
                  .ok());
  EXPECT_EQ(actual.size(), 50u);
  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;
}

TEST_P(RTreeParamTest, SearchEarlyStop) {
  auto tree = MakeTree(2);
  Rng rng(13);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree->InsertPoint(RandomPoint(&rng, 2, 0.0, 10.0), i).ok());
  }
  int emitted = 0;
  ASSERT_TRUE(tree->Search(Rect({0.0, 0.0}, {10.0, 10.0}),
                           [&emitted](uint64_t, const Rect&) {
                             ++emitted;
                             return emitted < 5;
                           })
                  .ok());
  EXPECT_EQ(emitted, 5);
}

TEST_P(RTreeParamTest, RemoveHalfAndInvariantsHold) {
  const size_t dims = 2;
  auto tree = MakeTree(dims);
  Rng rng(14);
  std::vector<Point> points;
  for (uint64_t i = 0; i < 400; ++i) {
    Point p = RandomPoint(&rng, dims, 0.0, 50.0);
    ASSERT_TRUE(tree->InsertPoint(p, i).ok());
    points.push_back(std::move(p));
  }
  // Remove every even id.
  for (uint64_t i = 0; i < 400; i += 2) {
    auto removed = tree->Remove(Rect::FromPoint(points[i]), i);
    ASSERT_TRUE(removed.ok()) << removed.status().ToString();
    EXPECT_TRUE(*removed) << "id " << i;
  }
  EXPECT_EQ(tree->size(), 200u);
  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;

  // Brute-force parity on the survivors.
  for (int q = 0; q < 15; ++q) {
    Rect query = tsq::testing::RandomRect(&rng, dims, 0.0, 50.0);
    std::set<uint64_t> expected;
    for (uint64_t i = 1; i < 400; i += 2) {
      if (query.Contains(points[i])) expected.insert(i);
    }
    std::set<uint64_t> actual;
    ASSERT_TRUE(tree->Search(query,
                             [&actual](uint64_t id, const Rect&) {
                               actual.insert(id);
                               return true;
                             })
                    .ok());
    EXPECT_EQ(actual, expected);
  }
}

TEST_P(RTreeParamTest, RemoveMissingEntryReturnsFalse) {
  auto tree = MakeTree(2);
  ASSERT_TRUE(tree->InsertPoint({1.0, 1.0}, 7).ok());
  auto removed = tree->Remove(Rect::FromPoint(Point{2.0, 2.0}), 7);
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(*removed);
  removed = tree->Remove(Rect::FromPoint(Point{1.0, 1.0}), 8);
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(*removed);
  EXPECT_EQ(tree->size(), 1u);
}

TEST_P(RTreeParamTest, RemoveEverything) {
  auto tree = MakeTree(2);
  Rng rng(15);
  std::vector<Point> points;
  for (uint64_t i = 0; i < 150; ++i) {
    Point p = RandomPoint(&rng, 2, 0.0, 20.0);
    ASSERT_TRUE(tree->InsertPoint(p, i).ok());
    points.push_back(std::move(p));
  }
  for (uint64_t i = 0; i < 150; ++i) {
    auto removed = tree->Remove(Rect::FromPoint(points[i]), i);
    ASSERT_TRUE(removed.ok());
    EXPECT_TRUE(*removed);
  }
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);  // shrunk back to a leaf root
  int hits = 0;
  ASSERT_TRUE(tree->Search(Rect({-1e9, -1e9}, {1e9, 1e9}),
                           [&hits](uint64_t, const Rect&) {
                             ++hits;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(hits, 0);
}

// --- transformed search -----------------------------------------------------

TEST_P(RTreeParamTest, TransformedSearchMatchesBruteForce) {
  // Algorithm 1/2: searching the transformed index == searching the
  // transformed points.
  const size_t dims = 2;
  auto tree = MakeTree(dims);
  Rng rng(16);
  std::vector<Point> points;
  for (uint64_t i = 0; i < 300; ++i) {
    Point p = RandomPoint(&rng, dims, -50.0, 50.0);
    ASSERT_TRUE(tree->InsertPoint(p, i).ok());
    points.push_back(std::move(p));
  }
  for (int q = 0; q < 20; ++q) {
    AffineMap map({rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0)},
                  {rng.Uniform(-10.0, 10.0), rng.Uniform(-10.0, 10.0)});
    Rect query = tsq::testing::RandomRect(&rng, dims, -100.0, 100.0);
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < points.size(); ++i) {
      if (query.Contains(map.Apply(points[i]))) expected.insert(i);
    }
    std::set<uint64_t> actual;
    ASSERT_TRUE(tree->SearchTransformed(map, query,
                                        [&actual](uint64_t id, const Rect&) {
                                          actual.insert(id);
                                          return true;
                                        })
                    .ok());
    EXPECT_EQ(actual, expected);
  }
}

TEST_P(RTreeParamTest, IdentityTransformEqualsPlainSearch) {
  // The Figure 8/9 premise: the identity transformation gives the same
  // answers (and visits the same nodes) as the plain search.
  const size_t dims = 4;
  auto tree = MakeTree(dims);
  Rng rng(17);
  for (uint64_t i = 0; i < 250; ++i) {
    ASSERT_TRUE(tree->InsertPoint(RandomPoint(&rng, dims, 0.0, 10.0), i).ok());
  }
  const AffineMap identity = AffineMap::Identity(dims);
  for (int q = 0; q < 10; ++q) {
    Rect query = tsq::testing::RandomRect(&rng, dims, 0.0, 10.0);
    std::set<uint64_t> plain;
    tree->ResetStats();
    ASSERT_TRUE(tree->Search(query,
                             [&plain](uint64_t id, const Rect&) {
                               plain.insert(id);
                               return true;
                             })
                    .ok());
    const uint64_t plain_nodes = tree->stats().nodes_visited;
    std::set<uint64_t> transformed;
    tree->ResetStats();
    ASSERT_TRUE(tree->SearchTransformed(identity, query,
                                        [&transformed](uint64_t id,
                                                       const Rect&) {
                                          transformed.insert(id);
                                          return true;
                                        })
                    .ok());
    EXPECT_EQ(plain, transformed);
    EXPECT_EQ(plain_nodes, tree->stats().nodes_visited);
    EXPECT_GT(tree->stats().rect_transforms, 0u);
  }
}

// --- nearest neighbors --------------------------------------------------------

/// Plain Euclidean MINDIST metric for NN tests.
class EuclideanMetric final : public NnMetric {
 public:
  explicit EuclideanMetric(Point q) : q_(std::move(q)) {}
  double MinDistSquared(const Rect& rect) const override {
    return spatial::MinDistSquared(q_, rect);
  }

 private:
  Point q_;
};

TEST_P(RTreeParamTest, NearestNeighborsMatchBruteForce) {
  const size_t dims = 3;
  auto tree = MakeTree(dims);
  Rng rng(18);
  std::vector<Point> points;
  for (uint64_t i = 0; i < 400; ++i) {
    Point p = RandomPoint(&rng, dims, 0.0, 100.0);
    ASSERT_TRUE(tree->InsertPoint(p, i).ok());
    points.push_back(std::move(p));
  }
  for (int q = 0; q < 10; ++q) {
    Point query = RandomPoint(&rng, dims, 0.0, 100.0);
    EuclideanMetric metric(query);
    const size_t k = 1 + static_cast<size_t>(rng.UniformInt(0, 9));
    std::vector<NnResult> got;
    ASSERT_TRUE(tree->NearestNeighbors(metric, k, nullptr, &got).ok());
    ASSERT_EQ(got.size(), k);

    std::vector<std::pair<double, uint64_t>> brute;
    for (uint64_t i = 0; i < points.size(); ++i) {
      brute.emplace_back(spatial::PointDistSquared(query, points[i]), i);
    }
    std::sort(brute.begin(), brute.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(got[i].distance, std::sqrt(brute[i].first), 1e-9)
          << "rank " << i;
    }
    // Ascending order.
    for (size_t i = 1; i < k; ++i) {
      EXPECT_LE(got[i - 1].distance, got[i].distance + 1e-12);
    }
  }
}

TEST_P(RTreeParamTest, NearestNeighborsStreamEnumeratesAllInOrder) {
  auto tree = MakeTree(2);
  Rng rng(19);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree->InsertPoint(RandomPoint(&rng, 2, 0.0, 10.0), i).ok());
  }
  EuclideanMetric metric(Point{5.0, 5.0});
  std::vector<double> dists;
  ASSERT_TRUE(tree->NearestNeighborsStream(metric, nullptr,
                                           [&dists](uint64_t, double d) {
                                             dists.push_back(d);
                                             return true;
                                           })
                  .ok());
  ASSERT_EQ(dists.size(), 100u);
  EXPECT_TRUE(std::is_sorted(dists.begin(), dists.end()));
}

TEST_P(RTreeParamTest, KnnWithMoreThanSizeReturnsAll) {
  auto tree = MakeTree(2);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        tree->InsertPoint({static_cast<double>(i), 0.0}, i).ok());
  }
  EuclideanMetric metric(Point{0.0, 0.0});
  std::vector<NnResult> got;
  ASSERT_TRUE(tree->NearestNeighbors(metric, 50, nullptr, &got).ok());
  EXPECT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].id, 0u);
}

// --- persistence -----------------------------------------------------------------

TEST_P(RTreeParamTest, PersistsAcrossReopen) {
  const size_t dims = 2;
  Rng rng(20);
  std::vector<Point> points;
  PageId meta = kInvalidPageId;
  {
    auto tree = MakeTree(dims);
    for (uint64_t i = 0; i < 200; ++i) {
      Point p = RandomPoint(&rng, dims, 0.0, 30.0);
      ASSERT_TRUE(tree->InsertPoint(p, i).ok());
      points.push_back(std::move(p));
    }
    meta = tree->meta_page();
    ASSERT_TRUE(tree->SaveMeta().ok());
    ASSERT_TRUE(pool_->FlushAll().ok());
  }
  RTreeOptions options;
  options.split = std::get<0>(GetParam());
  options.forced_reinsert = std::get<1>(GetParam());
  options.max_entries_override = 8;
  auto tree = RStarTree::Open(pool_.get(), meta, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->size(), 200u);

  Rect query({5.0, 5.0}, {25.0, 25.0});
  std::set<uint64_t> expected;
  for (uint64_t i = 0; i < points.size(); ++i) {
    if (query.Contains(points[i])) expected.insert(i);
  }
  std::set<uint64_t> actual;
  ASSERT_TRUE((*tree)
                  ->Search(query,
                           [&actual](uint64_t id, const Rect&) {
                             actual.insert(id);
                             return true;
                           })
                  .ok());
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, RTreeParamTest,
    ::testing::Combine(::testing::Values(SplitAlgorithm::kRStar,
                                         SplitAlgorithm::kGuttmanQuadratic,
                                         SplitAlgorithm::kGuttmanLinear),
                       ::testing::Bool()));

// --- non-parameterized edge cases ------------------------------------------------

class RTreeEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pf = PageFile::Create(dir_.file("tree.pages"));
    ASSERT_TRUE(pf.ok());
    file_ = std::move(*pf);
    pool_ = std::make_unique<BufferPool>(file_.get(), 64);
  }
  TempDir dir_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(RTreeEdgeTest, RejectsDimensionMismatches) {
  auto tree = RStarTree::Create(pool_.get(), 3, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->InsertPoint({1.0, 2.0}, 0).IsInvalidArgument());
  EXPECT_TRUE((*tree)
                  ->Search(Rect({0.0}, {1.0}),
                           [](uint64_t, const Rect&) { return true; })
                  .IsInvalidArgument());
}

TEST_F(RTreeEdgeTest, RejectsEmptyRectAndBadOptions) {
  auto tree = RStarTree::Create(pool_.get(), 2, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->Insert(Rect::Empty(2), 0).IsInvalidArgument());
  RTreeOptions bad;
  bad.reinsert_fraction = 0.9;
  EXPECT_TRUE(
      RStarTree::Create(pool_.get(), 2, bad).status().IsInvalidArgument());
  EXPECT_TRUE(RStarTree::Create(pool_.get(), 0, {}).status()
                  .IsInvalidArgument());
}

TEST_F(RTreeEdgeTest, OpenRejectsNonMetaPage) {
  auto tree = RStarTree::Create(pool_.get(), 2, {});
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->InsertPoint({0.0, 0.0}, 0).ok());
  // Page 2 is the root node, not the meta page.
  EXPECT_FALSE(RStarTree::Open(pool_.get(), (*tree)->meta_page() + 1, {}).ok());
}

TEST_F(RTreeEdgeTest, HeightGrowsLogarithmically) {
  RTreeOptions options;
  options.max_entries_override = 4;
  auto tree = RStarTree::Create(pool_.get(), 2, options);
  ASSERT_TRUE(tree.ok());
  Rng rng(21);
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE((*tree)->InsertPoint(RandomPoint(&rng, 2, 0.0, 1.0), i).ok());
  }
  // Fanout 4, 256 points: height must be at least 4 and not absurd.
  EXPECT_GE((*tree)->height(), 4u);
  EXPECT_LE((*tree)->height(), 10u);
}

}  // namespace
}  // namespace rtree
}  // namespace tsq

namespace tsq {
namespace rtree {
namespace {

// ---------------------------------------------------------------------------
// STR bulk loading
// ---------------------------------------------------------------------------

class BulkLoadTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    auto pf = PageFile::Create(dir_.file("bulk.pages"));
    ASSERT_TRUE(pf.ok());
    file_ = std::move(*pf);
    pool_ = std::make_unique<BufferPool>(file_.get(), 256);
  }
  tsq::testing::TempDir dir_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_P(BulkLoadTest, LoadsAndSearchesExactly) {
  const size_t count = GetParam();
  RTreeOptions options;
  options.max_entries_override = 10;
  auto tree = RStarTree::Create(pool_.get(), 3, options).value();

  Rng rng(count + 5);
  std::vector<Entry> entries;
  std::vector<spatial::Point> points;
  for (uint64_t i = 0; i < count; ++i) {
    spatial::Point p = tsq::testing::RandomPoint(&rng, 3, 0.0, 100.0);
    Entry e;
    e.rect = spatial::Rect::FromPoint(p);
    e.id = i;
    entries.push_back(e);
    points.push_back(std::move(p));
  }
  ASSERT_TRUE(tree->BulkLoad(entries).ok());
  EXPECT_EQ(tree->size(), count);

  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;

  for (int q = 0; q < 10; ++q) {
    spatial::Rect query = tsq::testing::RandomRect(&rng, 3, 0.0, 100.0);
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < count; ++i) {
      if (query.Contains(points[i])) expected.insert(i);
    }
    std::set<uint64_t> actual;
    ASSERT_TRUE(tree->Search(query,
                             [&actual](uint64_t id, const spatial::Rect&) {
                               actual.insert(id);
                               return true;
                             })
                    .ok());
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadTest,
                         ::testing::Values(0, 1, 5, 10, 11, 100, 1000, 5000));

TEST(BulkLoadEdgeTest, RequiresEmptyTreeAndValidEntries) {
  tsq::testing::TempDir dir;
  auto file = PageFile::Create(dir.file("b.pages")).value();
  BufferPool pool(file.get(), 64);
  auto tree = RStarTree::Create(&pool, 2, {}).value();
  ASSERT_TRUE(tree->InsertPoint({1.0, 1.0}, 0).ok());

  Entry e;
  e.rect = spatial::Rect::FromPoint(spatial::Point{2.0, 2.0});
  e.id = 1;
  EXPECT_TRUE(tree->BulkLoad({e}).IsFailedPrecondition());

  auto tree2 = RStarTree::Create(&pool, 2, {}).value();
  Entry bad;
  bad.rect = spatial::Rect::FromPoint(spatial::Point{1.0});  // wrong dims
  EXPECT_TRUE(tree2->BulkLoad({bad}).IsInvalidArgument());
  Entry empty_rect;
  empty_rect.rect = spatial::Rect::Empty(2);
  EXPECT_TRUE(tree2->BulkLoad({empty_rect}).IsInvalidArgument());
}

TEST(BulkLoadEdgeTest, InsertAndRemoveWorkAfterBulkLoad) {
  tsq::testing::TempDir dir;
  auto file = PageFile::Create(dir.file("b.pages")).value();
  BufferPool pool(file.get(), 128);
  RTreeOptions options;
  options.max_entries_override = 8;
  auto tree = RStarTree::Create(&pool, 2, options).value();

  Rng rng(8);
  std::vector<Entry> entries;
  std::vector<spatial::Point> points;
  for (uint64_t i = 0; i < 500; ++i) {
    spatial::Point p = tsq::testing::RandomPoint(&rng, 2, 0.0, 50.0);
    Entry e;
    e.rect = spatial::Rect::FromPoint(p);
    e.id = i;
    entries.push_back(e);
    points.push_back(std::move(p));
  }
  ASSERT_TRUE(tree->BulkLoad(entries).ok());

  // Post-load mutations.
  for (uint64_t i = 500; i < 600; ++i) {
    ASSERT_TRUE(
        tree->InsertPoint(tsq::testing::RandomPoint(&rng, 2, 0.0, 50.0), i)
            .ok());
  }
  for (uint64_t i = 0; i < 500; i += 3) {
    auto removed = tree->Remove(spatial::Rect::FromPoint(points[i]), i);
    ASSERT_TRUE(removed.ok());
    EXPECT_TRUE(*removed);
  }
  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;
}

TEST(BulkLoadEdgeTest, BulkLoadedDatabaseMatchesIncremental) {
  tsq::testing::TempDir dir;
  auto data = tsq::workload::MakeRandomWalkDataset(313, 400, 64);

  auto build = [&](bool bulk) {
    DatabaseOptions options;
    options.directory = dir.path();
    options.name = bulk ? "bulk" : "incr";
    options.bulk_load = bulk;
    auto db = Database::Create(options).value();
    for (const TimeSeries& s : data) {
      EXPECT_TRUE(db->Insert(s.name(), s.values()).ok());
    }
    EXPECT_TRUE(db->BuildIndex().ok());
    return db;
  };
  auto bulk_db = build(true);
  auto incr_db = build(false);

  Rng rng(9);
  for (double eps : {0.5, 3.0, 9.0}) {
    const RealVec query = tsq::workload::RandomWalkSeries(&rng, 64, {});
    auto a = bulk_db->RangeQuery(query, eps).value();
    auto b = incr_db->RangeQuery(query, eps).value();
    ASSERT_EQ(a.size(), b.size()) << "eps=" << eps;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-12);
    }
  }
}

}  // namespace
}  // namespace rtree
}  // namespace tsq
