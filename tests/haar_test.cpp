// Copyright (c) 2026 The tsq Authors.
//
// Tests for the Haar wavelet basis: orthonormality (Parseval / distance
// preservation), inverse round trip, known coefficients, energy
// concentration on random walks, and full database parity when the index
// runs on Haar features instead of DFT features.

#include <cmath>
#include <set>

#include "common/random.h"
#include "core/database.h"
#include "dft/dft.h"
#include "dft/haar.h"
#include "gtest/gtest.h"
#include "series/distance.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using testing::ExpectRealNear;
using testing::RandomRealVec;
using testing::TempDir;

TEST(HaarTest, ValidLengths) {
  EXPECT_TRUE(haar::IsValidLength(1));
  EXPECT_TRUE(haar::IsValidLength(2));
  EXPECT_TRUE(haar::IsValidLength(64));
  EXPECT_FALSE(haar::IsValidLength(0));
  EXPECT_FALSE(haar::IsValidLength(3));
  EXPECT_FALSE(haar::IsValidLength(100));
}

TEST(HaarTest, KnownSmallTransform) {
  // n = 2: out = ((a+b)/sqrt2, (a-b)/sqrt2).
  RealVec out = haar::Forward({3.0, 1.0});
  EXPECT_NEAR(out[0], 4.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(out[1], 2.0 / std::sqrt(2.0), 1e-12);
  // Constant signal: all energy in coefficient 0.
  RealVec flat = haar::Forward(RealVec(8, 5.0));
  EXPECT_NEAR(flat[0], 5.0 * std::sqrt(8.0), 1e-12);
  for (size_t i = 1; i < 8; ++i) EXPECT_NEAR(flat[i], 0.0, 1e-12);
}

class HaarRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HaarRoundTripTest, InverseRecoversInput) {
  const size_t n = GetParam();
  Rng rng(n + 3);
  RealVec x = RandomRealVec(&rng, n);
  ExpectRealNear(haar::Inverse(haar::Forward(x)), x, 1e-9);
}

TEST_P(HaarRoundTripTest, OrthonormalityPreservesDistances) {
  const size_t n = GetParam();
  Rng rng(n + 4);
  RealVec x = RandomRealVec(&rng, n);
  RealVec y = RandomRealVec(&rng, n);
  EXPECT_NEAR(EuclideanDistance(haar::Forward(x), haar::Forward(y)),
              EuclideanDistance(x, y), 1e-9);
  EXPECT_NEAR(cvec::Energy(haar::Forward(x)), cvec::Energy(x), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Lengths, HaarRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 64, 128, 1024));

TEST(HaarTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(haar::Forward(RealVec(12, 1.0)), "power-of-two");
}

TEST(HaarTest, CoarseCoefficientsCaptureRandomWalkEnergy) {
  // The basis-choice premise: random-walk energy concentrates in the first
  // few coarse coefficients, just as with the DFT.
  Rng rng(5);
  double worst = 1.0;
  for (int trial = 0; trial < 20; ++trial) {
    RealVec x = workload::RandomWalkSeries(&rng, 128, {});
    RealVec h = haar::Forward(x);
    double head = 0.0;
    double total = 0.0;
    for (size_t i = 0; i < h.size(); ++i) {
      total += h[i] * h[i];
      if (i < 8) head += h[i] * h[i];
    }
    worst = std::min(worst, head / total);
  }
  EXPECT_GT(worst, 0.9);
}

TEST(HaarTest, LayoutValidation) {
  FeatureLayout layout = FeatureLayout::Haar(4);
  EXPECT_TRUE(layout.Validate(128).ok());
  EXPECT_TRUE(layout.Validate(100).IsInvalidArgument());  // not a power of 2
  layout.space = CoordinateSpace::kPolar;
  EXPECT_TRUE(layout.Validate(128).IsInvalidArgument());
}

TEST(HaarTest, DatabaseParityIndexVsScan) {
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "haar";
  options.layout = FeatureLayout::Haar(4);
  auto db = Database::Create(options).value();
  auto data = workload::MakeRandomWalkDataset(606, 300, 64);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());

  Rng rng(6);
  for (double eps : {0.5, 2.0, 6.0}) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto via_index = db->RangeQuery(query, eps);
    ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
    auto via_scan = db->ScanRangeQuery(query, eps);
    ASSERT_TRUE(via_scan.ok());
    std::set<SeriesId> a, b;
    for (const Match& m : *via_index) a.insert(m.id);
    for (const Match& m : *via_scan) b.insert(m.id);
    EXPECT_EQ(a, b) << "eps=" << eps;
  }
}

TEST(HaarTest, ScaleTransformWorksOnHaarFeatures) {
  // Real-stretch transforms act coefficient-wise in any orthonormal basis:
  // scaling the series scales every Haar coefficient identically.
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "haar_scale";
  options.layout = FeatureLayout::Haar(4);
  auto db = Database::Create(options).value();
  auto data = workload::MakeRandomWalkDataset(607, 100, 64);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());

  QuerySpec spec;
  spec.transform = FeatureTransform::Spectral(transforms::Scale(64, -1.0));
  spec.mode = TransformMode::kDataOnly;
  Rng rng(7);
  const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
  auto via_index = db->RangeQuery(query, 4.0, spec);
  ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
  auto via_scan = db->ScanRangeQuery(query, 4.0, spec);
  ASSERT_TRUE(via_scan.ok());
  ASSERT_EQ(via_index->size(), via_scan->size());
}

// ---------------------------------------------------------------------------
// Difference transform (momentum)
// ---------------------------------------------------------------------------

TEST(DifferenceTransformTest, MatchesTimeDomainDifference) {
  Rng rng(8);
  const size_t n = 32;
  RealVec x = RandomRealVec(&rng, n);
  LinearTransform t = transforms::Difference(n);
  RealVec via_freq = dft::InverseReal(t.Apply(dft::Forward(x)));
  RealVec expected(n);
  for (size_t i = 0; i < n; ++i) {
    expected[i] = x[i] - x[(i + n - 1) % n];
  }
  ExpectRealNear(via_freq, expected, 1e-8);
  EXPECT_TRUE(t.IsSafePolar());
  EXPECT_EQ(t.name(), "diff");
}

TEST(DifferenceTransformTest, KillsConstantSignals) {
  LinearTransform t = transforms::Difference(16);
  RealVec flat(16, 7.0);
  RealVec out = dft::InverseReal(t.Apply(dft::Forward(flat)));
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(DifferenceTransformTest, QueryParityThroughIndex) {
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "diffdb";
  auto db = Database::Create(options).value();
  auto data = workload::MakeRandomWalkDataset(608, 200, 64);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());
  QuerySpec spec;
  spec.transform = FeatureTransform::Spectral(transforms::Difference(64));
  Rng rng(9);
  for (double eps : {0.5, 2.0}) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto via_index = db->RangeQuery(query, eps, spec);
    ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
    auto via_scan = db->ScanRangeQuery(query, eps, spec);
    ASSERT_TRUE(via_scan.ok());
    std::set<SeriesId> a, b;
    for (const Match& m : *via_index) a.insert(m.id);
    for (const Match& m : *via_scan) b.insert(m.id);
    EXPECT_EQ(a, b) << "eps=" << eps;
  }
}

}  // namespace
}  // namespace tsq
