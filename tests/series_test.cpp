// Copyright (c) 2026 The tsq Authors.
//
// Tests for the time-series kernel: statistics, distances (including the
// early-abandon kernels), both moving-average variants, the normal form,
// and time warping. Includes the paper's Figure 1 numbers as golden values.

#include <cmath>
#include <optional>

#include "common/random.h"
#include "dft/dft.h"
#include "gtest/gtest.h"
#include "series/distance.h"
#include "series/moving_average.h"
#include "series/normal_form.h"
#include "series/time_series.h"
#include "series/warp.h"
#include "test_util.h"
#include "workload/paper_data.h"

namespace tsq {
namespace {

using testing::ExpectRealNear;
using testing::RandomRealVec;

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries s({1.0, 2.0, 3.0}, "abc");
  EXPECT_EQ(s.length(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 2.0);
  EXPECT_EQ(s.name(), "abc");
  s.set_name("xyz");
  EXPECT_EQ(s.name(), "xyz");
  EXPECT_EQ(s.Min(), 1.0);
  EXPECT_EQ(s.Max(), 3.0);
}

TEST(TimeSeriesTest, Statistics) {
  TimeSeries s({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.Mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.StdDev(), 2.0, 1e-12);  // classic population-sd example
  EXPECT_NEAR(s.Energy(), 4 + 16 * 3 + 25 * 2 + 49 + 81, 1e-12);
}

TEST(TimeSeriesTest, EmptySeries) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

// ---------------------------------------------------------------------------
// Distances
// ---------------------------------------------------------------------------

TEST(DistanceTest, EuclideanBasics) {
  RealVec x = {0.0, 3.0};
  RealVec y = {4.0, 0.0};
  EXPECT_NEAR(EuclideanDistance(x, y), 5.0, 1e-12);
  EXPECT_NEAR(SquaredEuclideanDistance(x, y), 25.0, 1e-12);
  EXPECT_NEAR(CityBlockDistance(x, y), 7.0, 1e-12);
  EXPECT_EQ(EuclideanDistance(x, x), 0.0);
}

TEST(DistanceTest, PaperFigure1Distance) {
  // "the high Euclidean distance D(s1, s2) = 11.92" (Example 1.1).
  const TimeSeries s1 = workload::paper::Fig1SeriesS1();
  const TimeSeries s2 = workload::paper::Fig1SeriesS2();
  EXPECT_NEAR(EuclideanDistance(s1, s2), 11.92, 0.005);
}

TEST(DistanceTest, TriangleInequalityProperty) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    RealVec a = RandomRealVec(&rng, 32);
    RealVec b = RandomRealVec(&rng, 32);
    RealVec c = RandomRealVec(&rng, 32);
    EXPECT_LE(EuclideanDistance(a, c),
              EuclideanDistance(a, b) + EuclideanDistance(b, c) + 1e-9);
  }
}

class EarlyAbandonTest : public ::testing::TestWithParam<double> {};

TEST_P(EarlyAbandonTest, AgreesWithFullDistance) {
  const double threshold = GetParam();
  Rng rng(static_cast<uint64_t>(threshold * 1000) + 17);
  for (int trial = 0; trial < 100; ++trial) {
    RealVec x = RandomRealVec(&rng, 48, -2.0, 2.0);
    RealVec y = RandomRealVec(&rng, 48, -2.0, 2.0);
    const double full = EuclideanDistance(x, y);
    std::optional<double> got = EarlyAbandonEuclidean(x, y, threshold);
    if (full <= threshold) {
      ASSERT_TRUE(got.has_value()) << "full=" << full;
      EXPECT_NEAR(*got, full, 1e-9);
    } else {
      EXPECT_FALSE(got.has_value()) << "full=" << full;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EarlyAbandonTest,
                         ::testing::Values(0.0, 1.0, 5.0, 10.0, 14.0, 30.0));

TEST(EarlyAbandonTest, ComplexVectorVariant) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    ComplexVec x = testing::RandomComplexVec(&rng, 32, -2.0, 2.0);
    ComplexVec y = testing::RandomComplexVec(&rng, 32, -2.0, 2.0);
    const double full = cvec::Distance(x, y);
    std::optional<double> got = EarlyAbandonEuclidean(x, y, full + 0.001);
    ASSERT_TRUE(got.has_value());
    EXPECT_NEAR(*got, full, 1e-9);
    EXPECT_FALSE(EarlyAbandonEuclidean(x, y, full - 0.001).has_value() &&
                 full > 0.001);
  }
}

// ---------------------------------------------------------------------------
// Moving averages
// ---------------------------------------------------------------------------

TEST(MovingAverageTest, PaperFigure1MovingAverageDistance) {
  // "The Euclidean distance between the three-day moving averages of two
  // sequences is 0.47" (Example 1.1) — with the paper's circular variant.
  const TimeSeries s1 = workload::paper::Fig1SeriesS1();
  const TimeSeries s2 = workload::paper::Fig1SeriesS2();
  const RealVec m1 = CircularMovingAverage(s1.values(), 3);
  const RealVec m2 = CircularMovingAverage(s2.values(), 3);
  EXPECT_NEAR(EuclideanDistance(m1, m2), 0.4714, 0.001);
}

TEST(MovingAverageTest, CircularEqualsKernelConvolution) {
  // The definitional identity behind Tmavg (Sec. 3.2): circular MA ==
  // circular convolution with the (1/l,...,1/l,0,...) kernel.
  Rng rng(23);
  for (size_t window : {1u, 2u, 3u, 5u, 20u}) {
    RealVec x = RandomRealVec(&rng, 32);
    ExpectRealNear(
        CircularMovingAverage(x, window),
        dft::CircularConvolution(x, MovingAverageKernel(32, window)), 1e-9);
  }
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  Rng rng(24);
  RealVec x = RandomRealVec(&rng, 10);
  ExpectRealNear(CircularMovingAverage(x, 1), x, 1e-12);
  ExpectRealNear(TruncatingMovingAverage(x, 1), x, 1e-12);
}

TEST(MovingAverageTest, FullWindowIsGlobalMean) {
  RealVec x = {1.0, 2.0, 3.0, 4.0};
  RealVec ma = CircularMovingAverage(x, 4);
  for (double v : ma) EXPECT_NEAR(v, 2.5, 1e-12);
}

TEST(MovingAverageTest, TruncatingLengthAndValues) {
  RealVec x = {1, 2, 3, 4, 5};
  RealVec ma = TruncatingMovingAverage(x, 3);
  ASSERT_EQ(ma.size(), 3u);
  EXPECT_NEAR(ma[0], 2.0, 1e-12);
  EXPECT_NEAR(ma[1], 3.0, 1e-12);
  EXPECT_NEAR(ma[2], 4.0, 1e-12);
}

TEST(MovingAverageTest, CircularMatchesTruncatingAwayFromWrap) {
  // The paper argues both variants "are almost the same" for small windows;
  // in the non-wrapped region they agree exactly (up to alignment): the
  // circular trailing MA at position i equals the truncating MA at i-l+1.
  Rng rng(25);
  RealVec x = RandomRealVec(&rng, 64);
  const size_t l = 5;
  RealVec circ = CircularMovingAverage(x, l);
  RealVec trunc = TruncatingMovingAverage(x, l);
  for (size_t i = l - 1; i < x.size(); ++i) {
    EXPECT_NEAR(circ[i], trunc[i - l + 1], 1e-9) << "i=" << i;
  }
}

TEST(MovingAverageTest, WeightedReducesToUniform) {
  Rng rng(26);
  RealVec x = RandomRealVec(&rng, 20);
  RealVec w(4, 0.25);
  ExpectRealNear(CircularWeightedMovingAverage(x, w),
                 CircularMovingAverage(x, 4), 1e-9);
}

TEST(MovingAverageTest, WeightedTrailingWeights) {
  // weights (1, 0, 0): out[i] = x[i]; weights (0, 1, 0): out[i] = x[i-1].
  RealVec x = {1, 2, 3, 4};
  ExpectRealNear(CircularWeightedMovingAverage(x, {1, 0, 0}), x, 1e-12);
  RealVec lagged = CircularWeightedMovingAverage(x, {0, 1, 0});
  ExpectRealNear(lagged, {4, 1, 2, 3}, 1e-12);
}

TEST(MovingAverageTest, SuccessiveApplication) {
  Rng rng(27);
  RealVec x = RandomRealVec(&rng, 30);
  RealVec twice = CircularMovingAverage(CircularMovingAverage(x, 7), 7);
  ExpectRealNear(SuccessiveCircularMovingAverage(x, 7, 2), twice, 1e-9);
  ExpectRealNear(SuccessiveCircularMovingAverage(x, 7, 0), x, 1e-12);
}

TEST(MovingAverageTest, SmoothingShrinksDistancesOfNoisyTwins) {
  // Example 1.1's moral: two series equal up to noise get much closer
  // after smoothing.
  Rng rng(28);
  RealVec base = RandomRealVec(&rng, 128, 0.0, 1.0);
  RealVec a(128);
  RealVec b(128);
  for (size_t i = 0; i < 128; ++i) {
    a[i] = base[i] + rng.Uniform(-1.0, 1.0);
    b[i] = base[i] + rng.Uniform(-1.0, 1.0);
  }
  const double before = EuclideanDistance(a, b);
  const double after = EuclideanDistance(CircularMovingAverage(a, 20),
                                         CircularMovingAverage(b, 20));
  EXPECT_LT(after, before / 2.0);
}

TEST(MovingAverageTest, PreservesMean) {
  Rng rng(29);
  TimeSeries x(RandomRealVec(&rng, 50), "x");
  TimeSeries ma = CircularMovingAverage(x, 9);
  EXPECT_NEAR(ma.Mean(), x.Mean(), 1e-9);
  EXPECT_EQ(ma.name(), "x");
}

// ---------------------------------------------------------------------------
// Normal form
// ---------------------------------------------------------------------------

TEST(NormalFormTest, ZeroMeanUnitStd) {
  Rng rng(35);
  RealVec x = RandomRealVec(&rng, 40, 5.0, 25.0);
  NormalForm nf = ToNormalForm(x);
  TimeSeries normalized(nf.normalized);
  EXPECT_NEAR(normalized.Mean(), 0.0, 1e-9);
  EXPECT_NEAR(normalized.StdDev(), 1.0, 1e-9);
}

TEST(NormalFormTest, RoundTripReconstruction) {
  Rng rng(36);
  RealVec x = RandomRealVec(&rng, 40);
  ExpectRealNear(FromNormalForm(ToNormalForm(x)), x, 1e-9);
}

TEST(NormalFormTest, FlatSeriesConvention) {
  RealVec flat(10, 4.2);
  NormalForm nf = ToNormalForm(flat);
  EXPECT_EQ(nf.std, 0.0);
  EXPECT_NEAR(nf.mean, 4.2, 1e-12);
  for (double v : nf.normalized) EXPECT_EQ(v, 0.0);
  ExpectRealNear(FromNormalForm(nf), flat, 1e-12);
}

TEST(NormalFormTest, ShiftAndScaleInvariance) {
  // The [GK95] point: normal forms are invariant under v -> a*v + b, a > 0.
  Rng rng(37);
  RealVec x = RandomRealVec(&rng, 64);
  RealVec y(64);
  for (size_t i = 0; i < 64; ++i) y[i] = 3.7 * x[i] - 11.0;
  EXPECT_NEAR(NormalFormDistance(x, y), 0.0, 1e-9);
}

TEST(NormalFormTest, NegativeScaleFlips) {
  Rng rng(38);
  RealVec x = RandomRealVec(&rng, 64);
  RealVec y(64);
  for (size_t i = 0; i < 64; ++i) y[i] = -x[i];
  NormalForm nx = ToNormalForm(x);
  NormalForm ny = ToNormalForm(y);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(ny.normalized[i], -nx.normalized[i], 1e-9);
  }
}

TEST(NormalFormTest, FirstDftCoefficientIsZero) {
  // Sec. 5: "the mean of a normal form series is zero by definition, [so]
  // the first Fourier coefficient is always zero".
  Rng rng(39);
  NormalForm nf = ToNormalForm(RandomRealVec(&rng, 32, 10.0, 90.0));
  ComplexVec spec = dft::Forward(nf.normalized);
  EXPECT_NEAR(std::abs(spec[0]), 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Time warping (time domain)
// ---------------------------------------------------------------------------

TEST(WarpTest, StretchBasics) {
  RealVec p = {20, 21, 20, 23};
  RealVec s = StretchTime(p, 2);
  ExpectRealNear(s, {20, 20, 21, 21, 20, 20, 23, 23}, 1e-12);
  ExpectRealNear(StretchTime(p, 1), p, 1e-12);
}

TEST(WarpTest, PaperFigure2WarpMakesSeriesIdentical) {
  // Example 1.2: "if the time dimension of ~p is scaled by 2 ... the
  // resulting sequence will be identical to ~s".
  const TimeSeries p = workload::paper::Fig2SeriesP();
  const TimeSeries s = workload::paper::Fig2SeriesS();
  ExpectRealNear(StretchTime(p.values(), 2), s.values(), 1e-12);
}

TEST(WarpTest, CompressInvertsStretch) {
  Rng rng(44);
  RealVec x = RandomRealVec(&rng, 25);
  for (size_t m : {1u, 2u, 3u, 5u}) {
    ExpectRealNear(CompressTime(StretchTime(x, m), m), x, 1e-12);
  }
}

TEST(WarpTest, StretchPreservesMeanAndRange) {
  Rng rng(45);
  TimeSeries x(RandomRealVec(&rng, 16), "w");
  TimeSeries s = StretchTime(x, 3);
  EXPECT_EQ(s.length(), 48u);
  EXPECT_NEAR(s.Mean(), x.Mean(), 1e-9);
  EXPECT_EQ(s.Min(), x.Min());
  EXPECT_EQ(s.Max(), x.Max());
}

}  // namespace
}  // namespace tsq
