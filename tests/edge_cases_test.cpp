// Copyright (c) 2026 The tsq Authors.
//
// Edge-case and robustness tests across the stack: degenerate series
// (flat, identical, tiny), extreme configurations (capacity-1 buffer pool,
// minimal page size), zero-threshold queries, and empty-answer paths —
// the corners a downstream user hits first.

#include <cmath>

#include "core/database.h"
#include "gtest/gtest.h"
#include "series/normal_form.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using testing::TempDir;

// ---------------------------------------------------------------------------
// Degenerate series through the whole stack
// ---------------------------------------------------------------------------

TEST(EdgeCaseTest, FlatSeriesAreIndexableAndFindEachOther) {
  // A flat series has std 0; its normal form is all-zero by convention, so
  // every flat series is "similar" to every other flat series — the index
  // must handle the all-zero feature point (polar magnitude 0, angle 0).
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "flat";
  auto db = Database::Create(options).value();
  ASSERT_TRUE(db->Insert("flat5", RealVec(32, 5.0)).ok());
  ASSERT_TRUE(db->Insert("flat9", RealVec(32, 9.0)).ok());
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db->Insert("walk", workload::RandomWalkSeries(&rng, 32, {})).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());

  auto matches = db->RangeQuery(RealVec(32, 7.0), 1e-9);
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  // Both flat series match at distance 0 (identical normal forms).
  ASSERT_EQ(matches->size(), 2u);
  EXPECT_NEAR((*matches)[0].distance, 0.0, 1e-12);
  EXPECT_NEAR((*matches)[1].distance, 0.0, 1e-12);
}

TEST(EdgeCaseTest, IdenticalSeriesAllRetrieved) {
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "dups";
  auto db = Database::Create(options).value();
  Rng rng(2);
  const RealVec proto = workload::RandomWalkSeries(&rng, 64, {});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->Insert("dup" + std::to_string(i), proto).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());
  auto matches = db->RangeQuery(proto, 0.0);  // zero threshold
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 50u);
  auto knn = db->Knn(proto, 50);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), 50u);
  for (const Match& m : *knn) EXPECT_NEAR(m.distance, 0.0, 1e-12);
}

TEST(EdgeCaseTest, TinySeriesLengthTwo) {
  // The smallest length the paper layout supports needs coefficients up to
  // X_2, so length-2 series need a smaller layout.
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "tiny";
  options.layout.num_coefficients = 1;  // X_1 only
  auto db = Database::Create(options).value();
  ASSERT_TRUE(db->Insert("a", {1.0, 2.0}).ok());
  ASSERT_TRUE(db->Insert("b", {5.0, 3.0}).ok());
  ASSERT_TRUE(db->BuildIndex().ok());
  auto matches = db->RangeQuery({2.0, 4.0}, 0.1);
  ASSERT_TRUE(matches.ok());
  // Normal form of (2,4) == normal form of (1,2) == (-1, 1).
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].name, "a");
}

TEST(EdgeCaseTest, SingleSeriesDatabase) {
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "single";
  auto db = Database::Create(options).value();
  Rng rng(3);
  const RealVec only = workload::RandomWalkSeries(&rng, 64, {});
  ASSERT_TRUE(db->Insert("only", only).ok());
  ASSERT_TRUE(db->BuildIndex().ok());
  EXPECT_EQ(db->RangeQuery(only, 1.0).value().size(), 1u);
  EXPECT_EQ(db->Knn(only, 5).value().size(), 1u);
  auto join = db->SelfJoin(1.0, JoinMethod::kTreeMatch, std::nullopt);
  ASSERT_TRUE(join.ok());
  EXPECT_TRUE(join->empty());
}

TEST(EdgeCaseTest, EmptyAnswerSetsEverywhere) {
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "empty";
  auto db = Database::Create(options).value();
  auto data = workload::MakeRandomWalkDataset(4, 50, 64);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());
  // A query far outside the data's normal-form cloud: shift the phase by
  // querying a pure high-frequency signal.
  RealVec weird(64);
  for (size_t i = 0; i < 64; ++i) weird[i] = (i % 2 == 0) ? 100.0 : -100.0;
  auto matches = db->RangeQuery(weird, 1e-6);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
  auto scan = db->ScanRangeQuery(weird, 1e-6);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->empty());
}

// ---------------------------------------------------------------------------
// Extreme storage configurations
// ---------------------------------------------------------------------------

TEST(EdgeCaseTest, BufferPoolCapacityOne) {
  TempDir dir;
  auto file = PageFile::Create(dir.file("tiny.pages")).value();
  BufferPool pool(file.get(), 1);
  // Sequential single-pin workload works with one frame.
  PageId first = 0;
  {
    auto h = pool.New().value();
    first = h.id();
    h.page()->WriteU64(0, 11);
    h.MarkDirty();
  }
  PageId second = 0;
  {
    auto h = pool.New().value();
    second = h.id();
    h.page()->WriteU64(0, 22);
    h.MarkDirty();
  }
  EXPECT_EQ(pool.Fetch(first).value().page()->ReadU64(0), 11u);
  EXPECT_EQ(pool.Fetch(second).value().page()->ReadU64(0), 22u);
  EXPECT_GE(pool.stats().evictions, 2u);
}

TEST(EdgeCaseTest, MinimumPageSizeTree) {
  // 512-byte pages with 2 dims: capacity (512-16)/40 = 12 entries.
  TempDir dir;
  auto file = PageFile::Create(dir.file("small.pages"), 512).value();
  BufferPool pool(file.get(), 32);
  auto tree = rtree::RStarTree::Create(&pool, 2, {}).value();
  EXPECT_EQ(tree->node_capacity(), 12u);
  Rng rng(5);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        tree->InsertPoint(testing::RandomPoint(&rng, 2, 0.0, 10.0), i).ok());
  }
  auto check = tree->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;
}

TEST(EdgeCaseTest, HighDimensionalTreeRejectedOnSmallPages) {
  // 512-byte pages cannot host a 16-dim tree (capacity < 4).
  TempDir dir;
  auto file = PageFile::Create(dir.file("hd.pages"), 512).value();
  BufferPool pool(file.get(), 8);
  EXPECT_TRUE(
      rtree::RStarTree::Create(&pool, 16, {}).status().IsInvalidArgument());
}

TEST(EdgeCaseTest, LongNamesAndLongSeriesRoundTrip) {
  TempDir dir;
  auto rel = Relation::Create(dir.file("big.rel")).value();
  const std::string long_name(1000, 'x');
  Rng rng(6);
  RealVec values = testing::RandomRealVec(&rng, 4096);
  ComplexVec spectrum = testing::RandomComplexVec(&rng, 4096);
  auto id = rel->Append(long_name, values, spectrum);
  ASSERT_TRUE(id.ok());
  auto rec = rel->Get(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->name, long_name);
  EXPECT_EQ(rec->values, values);
  EXPECT_EQ(rec->dft, spectrum);
}

// ---------------------------------------------------------------------------
// Query-spec corners
// ---------------------------------------------------------------------------

TEST(EdgeCaseTest, ZeroEpsilonTransformedQuery) {
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "zeroeps";
  auto db = Database::Create(options).value();
  auto data = workload::MakeRandomWalkDataset(7, 60, 64);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());
  QuerySpec spec;
  spec.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(64, 8));
  auto rec = db->Get(10).value();
  auto matches = db->RangeQuery(rec.values, 0.0, spec);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());  // itself, at distance exactly 0
  EXPECT_EQ((*matches)[0].id, 10u);
}

TEST(EdgeCaseTest, DegenerateMeanStdWindowActsAsPointPredicate) {
  TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "window";
  auto db = Database::Create(options).value();
  auto data = workload::MakeRandomWalkDataset(8, 60, 64);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());
  auto rec = db->Get(5).value();
  NormalForm nf = ToNormalForm(rec.values);
  QuerySpec spec;
  // Zero-width window exactly at series 5's (mean, std).
  spec.window = MeanStdWindow{nf.mean, nf.mean, nf.std, nf.std};
  auto matches = db->RangeQuery(rec.values, 100.0, spec);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].id, 5u);
}

}  // namespace
}  // namespace tsq
