// Copyright (c) 2026 The tsq Authors.
//
// Tests for the spatial layer: rectangle geometry, the RKV95 NN metrics,
// and the AffineMap that realizes safe transformations on MBRs —
// including the property at the heart of Definition 1 / Algorithm 1:
// a point inside a rectangle stays inside the transformed rectangle.

#include <cmath>
#include <numbers>

#include "common/random.h"
#include "gtest/gtest.h"
#include "spatial/affine_map.h"
#include "spatial/metrics.h"
#include "spatial/rect.h"
#include "test_util.h"

namespace tsq {
namespace spatial {
namespace {

constexpr double kPi = std::numbers::pi;

using tsq::testing::RandomPoint;
using tsq::testing::RandomRect;

// ---------------------------------------------------------------------------
// Rect
// ---------------------------------------------------------------------------

TEST(RectTest, ConstructionAndAccessors) {
  Rect r({0.0, -1.0}, {2.0, 3.0});
  EXPECT_EQ(r.dims(), 2u);
  EXPECT_EQ(r.lo(0), 0.0);
  EXPECT_EQ(r.hi(1), 3.0);
  EXPECT_EQ(r.Extent(0), 2.0);
  EXPECT_EQ(r.Extent(1), 4.0);
  EXPECT_EQ(r.Area(), 8.0);
  EXPECT_EQ(r.Margin(), 6.0);
  EXPECT_FALSE(r.IsEmpty());
}

TEST(RectTest, FromPointIsDegenerate) {
  Rect r = Rect::FromPoint({1.0, 2.0, 3.0});
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Margin(), 0.0);
  EXPECT_TRUE(r.Contains({1.0, 2.0, 3.0}));
  EXPECT_FALSE(r.IsEmpty());
}

TEST(RectTest, EmptyRect) {
  Rect e = Rect::Empty(3);
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Area(), 0.0);
  Rect r({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  Rect u = e.UnionWith(r);
  EXPECT_EQ(u, r);  // empty is the union identity
  EXPECT_TRUE(Rect().IsEmpty());
}

TEST(RectTest, IntersectionTests) {
  Rect a({0.0, 0.0}, {2.0, 2.0});
  Rect b({1.0, 1.0}, {3.0, 3.0});
  Rect c({2.0, 2.0}, {4.0, 4.0});  // touches a at a corner
  Rect d({5.0, 5.0}, {6.0, 6.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_TRUE(a.Intersects(c));  // closed rectangles: touching intersects
  EXPECT_FALSE(a.Intersects(d));
  EXPECT_NEAR(a.IntersectionArea(b), 1.0, 1e-12);
  EXPECT_NEAR(a.IntersectionArea(c), 0.0, 1e-12);
  EXPECT_NEAR(a.IntersectionArea(d), 0.0, 1e-12);
}

TEST(RectTest, ContainsAndContainsRect) {
  Rect a({0.0, 0.0}, {4.0, 4.0});
  EXPECT_TRUE(a.Contains({0.0, 0.0}));  // boundary is inside (closed)
  EXPECT_TRUE(a.Contains({2.0, 4.0}));
  EXPECT_FALSE(a.Contains({2.0, 4.1}));
  EXPECT_TRUE(a.ContainsRect(Rect({1.0, 1.0}, {2.0, 2.0})));
  EXPECT_TRUE(a.ContainsRect(a));
  EXPECT_FALSE(a.ContainsRect(Rect({1.0, 1.0}, {5.0, 2.0})));
}

TEST(RectTest, UnionAndEnlargement) {
  Rect a({0.0, 0.0}, {1.0, 1.0});
  Rect b({2.0, 2.0}, {3.0, 3.0});
  Rect u = a.UnionWith(b);
  EXPECT_EQ(u, Rect({0.0, 0.0}, {3.0, 3.0}));
  EXPECT_NEAR(a.Enlargement(b), 9.0 - 1.0, 1e-12);
  EXPECT_NEAR(a.Enlargement(a), 0.0, 1e-12);
}

TEST(RectTest, GrownExpandsEverySide) {
  Rect a({1.0, 1.0}, {2.0, 2.0});
  Rect g = a.Grown(0.5);
  EXPECT_EQ(g, Rect({0.5, 0.5}, {2.5, 2.5}));
}

TEST(RectTest, CenterAndToString) {
  Rect a({0.0, 2.0}, {4.0, 6.0});
  Point c = a.Center();
  EXPECT_EQ(c[0], 2.0);
  EXPECT_EQ(c[1], 4.0);
  EXPECT_FALSE(a.ToString().empty());
}

TEST(RectTest, ExpandToIncludePoint) {
  Rect a = Rect::Empty(2);
  a.ExpandToInclude(Point{1.0, 5.0});
  a.ExpandToInclude(Point{-2.0, 3.0});
  EXPECT_EQ(a, Rect({-2.0, 3.0}, {1.0, 5.0}));
}

TEST(RectTest, UnionIsCommutativeAndMonotonicProperty) {
  Rng rng(101);
  for (int trial = 0; trial < 100; ++trial) {
    Rect a = RandomRect(&rng, 4);
    Rect b = RandomRect(&rng, 4);
    EXPECT_EQ(a.UnionWith(b), b.UnionWith(a));
    EXPECT_TRUE(a.UnionWith(b).ContainsRect(a));
    EXPECT_TRUE(a.UnionWith(b).ContainsRect(b));
    EXPECT_GE(a.UnionWith(b).Area(), std::max(a.Area(), b.Area()) - 1e-9);
  }
}

TEST(RectTest, IntersectionAreaSymmetricProperty) {
  Rng rng(102);
  for (int trial = 0; trial < 100; ++trial) {
    Rect a = RandomRect(&rng, 3);
    Rect b = RandomRect(&rng, 3);
    EXPECT_NEAR(a.IntersectionArea(b), b.IntersectionArea(a), 1e-9);
    EXPECT_EQ(a.IntersectionArea(b) > 0.0 ||
                  a.Intersects(b),  // touching rects have area 0
              a.Intersects(b));
  }
}

// ---------------------------------------------------------------------------
// MINDIST / MINMAXDIST
// ---------------------------------------------------------------------------

TEST(MetricsTest, MinDistBasics) {
  Rect r({0.0, 0.0}, {2.0, 2.0});
  EXPECT_EQ(MinDistSquared({1.0, 1.0}, r), 0.0);   // inside
  EXPECT_EQ(MinDistSquared({2.0, 2.0}, r), 0.0);   // corner
  EXPECT_NEAR(MinDistSquared({3.0, 1.0}, r), 1.0, 1e-12);
  EXPECT_NEAR(MinDistSquared({3.0, 3.0}, r), 2.0, 1e-12);
  EXPECT_NEAR(MinDistSquared({-1.0, -1.0}, r), 2.0, 1e-12);
}

TEST(MetricsTest, MinDistLowerBoundsContainedPointsProperty) {
  // For any p and any point q inside R: MINDIST(p, R) <= d(p, q).
  Rng rng(103);
  for (int trial = 0; trial < 200; ++trial) {
    Rect r = RandomRect(&rng, 3);
    Point p = RandomPoint(&rng, 3, -150.0, 150.0);
    Point q(3);
    for (size_t d = 0; d < 3; ++d) q[d] = rng.Uniform(r.lo(d), r.hi(d));
    EXPECT_LE(MinDistSquared(p, r), PointDistSquared(p, q) + 1e-9);
  }
}

TEST(MetricsTest, MinMaxDistAtLeastMinDistProperty) {
  Rng rng(104);
  for (int trial = 0; trial < 200; ++trial) {
    Rect r = RandomRect(&rng, 4);
    Point p = RandomPoint(&rng, 4, -150.0, 150.0);
    EXPECT_GE(MinMaxDistSquared(p, r), MinDistSquared(p, r) - 1e-9);
  }
}

TEST(MetricsTest, MinMaxDistUpperBoundsSomeFacePoint) {
  // MINMAXDIST must be attainable: it equals the distance to some point on
  // the rect's boundary, hence <= the max-corner distance.
  Rng rng(105);
  for (int trial = 0; trial < 100; ++trial) {
    Rect r = RandomRect(&rng, 3);
    Point p = RandomPoint(&rng, 3);
    double max_corner = 0.0;
    for (int corner = 0; corner < 8; ++corner) {
      Point c(3);
      for (size_t d = 0; d < 3; ++d) {
        c[d] = (corner >> d & 1) ? r.hi(d) : r.lo(d);
      }
      max_corner = std::max(max_corner, PointDistSquared(p, c));
    }
    EXPECT_LE(MinMaxDistSquared(p, r), max_corner + 1e-9);
  }
}

TEST(MetricsTest, MinDistToDegenerateRectIsExact) {
  Rng rng(106);
  for (int trial = 0; trial < 50; ++trial) {
    Point q = RandomPoint(&rng, 5);
    Point p = RandomPoint(&rng, 5);
    EXPECT_NEAR(MinDistSquared(p, Rect::FromPoint(q)), PointDistSquared(p, q),
                1e-9);
  }
}

TEST(MetricsTest, PointSegmentDistance) {
  // Horizontal segment (0,0)-(2,0).
  EXPECT_NEAR(PointSegmentDistSquared(1.0, 1.0, 0, 0, 2, 0), 1.0, 1e-12);
  EXPECT_NEAR(PointSegmentDistSquared(3.0, 0.0, 0, 0, 2, 0), 1.0, 1e-12);
  EXPECT_NEAR(PointSegmentDistSquared(-1.0, 0.0, 0, 0, 2, 0), 1.0, 1e-12);
  EXPECT_NEAR(PointSegmentDistSquared(1.0, 0.0, 0, 0, 2, 0), 0.0, 1e-12);
  // Degenerate segment = point distance.
  EXPECT_NEAR(PointSegmentDistSquared(1.0, 1.0, 0, 0, 0, 0), 2.0, 1e-12);
}

// ---------------------------------------------------------------------------
// AffineMap
// ---------------------------------------------------------------------------

TEST(AffineMapTest, IdentityMapsEverythingToItself) {
  AffineMap id = AffineMap::Identity(3);
  EXPECT_TRUE(id.IsIdentity());
  Rng rng(107);
  Point p = RandomPoint(&rng, 3);
  EXPECT_EQ(id.Apply(p), p);
  Rect r = RandomRect(&rng, 3);
  EXPECT_EQ(id.Apply(r), r);
}

TEST(AffineMapTest, AppliesScaleAndOffset) {
  AffineMap m({2.0, -1.0}, {1.0, 0.0});
  Point p = m.Apply({3.0, 4.0});
  EXPECT_EQ(p[0], 7.0);
  EXPECT_EQ(p[1], -4.0);
  // Negative scale must flip the interval, not invert it.
  Rect r = m.Apply(Rect({0.0, 1.0}, {1.0, 2.0}));
  EXPECT_EQ(r, Rect({1.0, -2.0}, {3.0, -1.0}));
}

TEST(AffineMapTest, SafetyPropertyPointsStayInside) {
  // Definition 1: interior points map to interior points — checked by
  // sampling, including negative scales.
  Rng rng(108);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dims = 1 + static_cast<size_t>(rng.UniformInt(1, 5));
    std::vector<double> scale(dims);
    std::vector<double> offset(dims);
    for (size_t d = 0; d < dims; ++d) {
      scale[d] = rng.Uniform(-3.0, 3.0);
      offset[d] = rng.Uniform(-10.0, 10.0);
    }
    AffineMap map(scale, offset);
    Rect r = RandomRect(&rng, dims);
    Rect tr = map.Apply(r);
    for (int s = 0; s < 10; ++s) {
      Point q(dims);
      for (size_t d = 0; d < dims; ++d) q[d] = rng.Uniform(r.lo(d), r.hi(d));
      EXPECT_TRUE(tr.Contains(map.Apply(q)));
    }
  }
}

TEST(AffineMapTest, WrapAngleCanonicalRange) {
  EXPECT_NEAR(WrapAngle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(WrapAngle(kPi), kPi, 1e-12);
  EXPECT_NEAR(WrapAngle(-kPi), kPi, 1e-12);  // -pi wraps to +pi
  EXPECT_NEAR(WrapAngle(3 * kPi), kPi, 1e-9);
  EXPECT_NEAR(WrapAngle(2 * kPi + 0.5), 0.5, 1e-9);
  EXPECT_NEAR(WrapAngle(-2 * kPi - 0.5), -0.5, 1e-9);
}

TEST(AffineMapTest, AngularDimensionRotation) {
  AffineMap rot({1.0}, {kPi / 2}, {true});
  Point p = rot.Apply(Point{kPi / 4});
  EXPECT_NEAR(p[0], 3 * kPi / 4, 1e-12);
  // Rotating past the cut wraps.
  Point q = rot.Apply(Point{3 * kPi / 4});
  EXPECT_NEAR(q[0], -3 * kPi / 4, 1e-9);
}

TEST(AffineMapTest, AngularIntervalNonWrappingStaysTight) {
  AffineMap rot({1.0}, {0.5}, {true});
  Rect r({-0.2}, {0.2});
  Rect tr = rot.Apply(r);
  EXPECT_NEAR(tr.lo(0), 0.3, 1e-12);
  EXPECT_NEAR(tr.hi(0), 0.7, 1e-12);
}

TEST(AffineMapTest, AngularIntervalWrappingWhollyStaysTight) {
  // An interval pushed entirely past +pi wraps cleanly to the negative
  // side and stays tight.
  AffineMap rot({1.0}, {1.0}, {true});
  Rect r({kPi - 0.5}, {kPi - 0.1});
  Rect tr = rot.Apply(r);
  EXPECT_NEAR(tr.lo(0), -kPi + 0.5, 1e-9);
  EXPECT_NEAR(tr.hi(0), -kPi + 0.9, 1e-9);
}

TEST(AffineMapTest, AngularIntervalStraddlingCutWidensToCircle) {
  // An interval that straddles the +-pi cut after rotation cannot be a
  // plain interval: it is widened to the whole circle (conservative).
  AffineMap rot({1.0}, {0.3}, {true});
  Rect r({kPi - 0.5}, {kPi - 0.1});  // -> [pi-0.2, pi+0.2]: straddles
  Rect tr = rot.Apply(r);
  EXPECT_NEAR(tr.lo(0), -kPi, 1e-12);
  EXPECT_NEAR(tr.hi(0), kPi, 1e-12);
}

TEST(AffineMapTest, AngularSafetyPointsStayInsideProperty) {
  // Even with wrap-widening, transformed points stay inside transformed
  // rects (the superset property Lemma 1 relies on).
  Rng rng(109);
  for (int trial = 0; trial < 300; ++trial) {
    const double rot = rng.Uniform(-2 * kPi, 2 * kPi);
    AffineMap map({1.0}, {rot}, {true});
    const double lo = rng.Uniform(-kPi, kPi - 0.01);
    const double hi = rng.Uniform(lo, kPi);
    Rect r({lo}, {hi});
    Rect tr = map.Apply(r);
    for (int s = 0; s < 5; ++s) {
      Point q{rng.Uniform(lo, hi)};
      EXPECT_TRUE(tr.Contains(map.Apply(q)))
          << "rot=" << rot << " interval=[" << lo << "," << hi << "]";
    }
  }
}

TEST(AffineMapTest, ComposeMatchesSequentialApplication) {
  Rng rng(110);
  for (int trial = 0; trial < 50; ++trial) {
    AffineMap f({rng.Uniform(-2, 2), rng.Uniform(-2, 2)},
                {rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    AffineMap g({rng.Uniform(-2, 2), rng.Uniform(-2, 2)},
                {rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    AffineMap fg = f.Compose(g);
    Point p = RandomPoint(&rng, 2);
    Point expected = f.Apply(g.Apply(p));
    Point actual = fg.Apply(p);
    EXPECT_NEAR(actual[0], expected[0], 1e-9);
    EXPECT_NEAR(actual[1], expected[1], 1e-9);
  }
}

}  // namespace
}  // namespace spatial
}  // namespace tsq
