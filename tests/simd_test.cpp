// Copyright (c) 2026 The tsq Authors.
//
// Executable proof of the kernel layer's lane-reduction determinism
// contract (src/simd/simd.h): every dispatch level must produce BITWISE
// identical doubles — on adversarial inputs (NaN, infinities, denormals,
// mixed magnitudes, negative zero), on every length around the block
// boundaries, and on unaligned pointers. The scalar level is the
// executable spec; SSE2/AVX2 are compared against it with EXPECT_EQ on
// the bit patterns, not EXPECT_NEAR.
//
// The second half pins the approximate-kNN invariants: epsilon = 0 is
// bit-identical to the exact path at every dispatch level, reported
// max_error never exceeds the requested tolerance, and the budget /
// first-leaf knobs cap the verification work they claim to cap.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/database.h"
#include "gtest/gtest.h"
#include "series/distance.h"
#include "simd/simd.h"
#include "test_util.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using simd::KernelTable;
using simd::Level;
using testing::TempDir;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormal = 4.9406564584124654e-324;  // min subnormal

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

std::vector<Level> SupportedLevels() {
  std::vector<Level> out;
  for (Level level : {Level::kScalar, Level::kSse2, Level::kAvx2}) {
    if (static_cast<int>(level) <=
        static_cast<int>(simd::BestSupportedLevel())) {
      out.push_back(level);
    }
  }
  return out;
}

/// Restores the dispatched level when a test that overrides it exits.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::ActiveLevel()) {}
  ~LevelGuard() { simd::SetLevelForTesting(saved_); }

 private:
  Level saved_;
};

/// Lengths straddling every boundary the kernels care about: the 4-wide
/// lane blocks, the 16-element EA checkpoints, and the <4 tail.
const size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,   9,   12,  13,
                           15, 16, 17, 19, 31, 32, 33, 63,  64,  65,  100,
                           127, 128, 129, 255, 256, 1000};

/// One named adversarial input pair.
struct Adversarial {
  const char* name;
  RealVec x;
  RealVec y;
};

std::vector<Adversarial> AdversarialPairs(size_t n, Rng* rng) {
  std::vector<Adversarial> cases;
  cases.push_back({"uniform", testing::RandomRealVec(rng, n),
                   testing::RandomRealVec(rng, n)});
  // Nine orders of magnitude apart per element — stresses rounding of the
  // running sums, where a wrong accumulation order shows up first.
  RealVec big(n), small(n);
  for (size_t i = 0; i < n; ++i) {
    big[i] = rng->Uniform(-1.0, 1.0) * 1e9;
    small[i] = rng->Uniform(-1.0, 1.0) * 1e-9;
  }
  cases.push_back({"mixed-magnitude", big, small});
  if (n > 0) {
    RealVec with_nan = testing::RandomRealVec(rng, n);
    with_nan[n / 2] = kNan;
    cases.push_back({"nan", with_nan, testing::RandomRealVec(rng, n)});
    RealVec with_inf = testing::RandomRealVec(rng, n);
    with_inf[0] = kInf;
    with_inf[n - 1] = -kInf;
    cases.push_back({"inf", with_inf, testing::RandomRealVec(rng, n)});
    RealVec denorm(n, kDenormal), negzero(n, -0.0);
    denorm[n / 2] = 1e-310;
    cases.push_back({"denormal-negzero", denorm, negzero});
  }
  return cases;
}

TEST(SimdDispatch, ParseAndNames) {
  EXPECT_EQ(simd::ParseLevel("scalar"), Level::kScalar);
  EXPECT_EQ(simd::ParseLevel("SSE2"), Level::kSse2);
  EXPECT_EQ(simd::ParseLevel("Avx2"), Level::kAvx2);
  EXPECT_EQ(simd::ParseLevel("avx512"), std::nullopt);
  EXPECT_EQ(simd::ParseLevel(""), std::nullopt);
  for (Level level : SupportedLevels()) {
    EXPECT_EQ(simd::ParseLevel(simd::LevelName(level)), level);
  }
}

TEST(SimdDispatch, SetLevelForTestingRoundTrip) {
  LevelGuard guard;
  for (Level level : SupportedLevels()) {
    ASSERT_TRUE(simd::SetLevelForTesting(level));
    EXPECT_EQ(simd::ActiveLevel(), level);
  }
}

TEST(SimdKernels, SumSquaredDiffBitwiseAcrossLevels) {
  const KernelTable& scalar = simd::KernelsFor(Level::kScalar);
  Rng rng(0x51);
  for (size_t n : kLengths) {
    for (const Adversarial& c : AdversarialPairs(n, &rng)) {
      const double want = scalar.sum_squared_diff(c.x.data(), c.y.data(), n);
      for (Level level : SupportedLevels()) {
        const KernelTable& k = simd::KernelsFor(level);
        EXPECT_EQ(Bits(k.sum_squared_diff(c.x.data(), c.y.data(), n)),
                  Bits(want))
            << c.name << " n=" << n << " level=" << simd::LevelName(level);
        // Unaligned: the same buffers shifted one double — no kernel may
        // assume 16/32-byte alignment.
        if (n >= 2) {
          const double want_off = scalar.sum_squared_diff(
              c.x.data() + 1, c.y.data() + 1, n - 1);
          EXPECT_EQ(
              Bits(k.sum_squared_diff(c.x.data() + 1, c.y.data() + 1, n - 1)),
              Bits(want_off))
              << c.name << " unaligned n-1=" << n - 1 << " level="
              << simd::LevelName(level);
        }
      }
    }
  }
}

TEST(SimdKernels, EarlyAbandonExactnessAndBitwiseAgreement) {
  const KernelTable& scalar = simd::KernelsFor(Level::kScalar);
  Rng rng(0x52);
  for (size_t n : kLengths) {
    const RealVec x = testing::RandomRealVec(&rng, n);
    const RealVec y = testing::RandomRealVec(&rng, n);
    const double full = scalar.sum_squared_diff(x.data(), y.data(), n);
    const double limits[] = {0.0,      full * 0.01, full * 0.5,
                             full,     full * 2.0,  kInf};
    for (double limit : limits) {
      const double want = scalar.sum_squared_diff_ea(x.data(), y.data(), n,
                                                     limit);
      // The contract: a result within the limit IS the exact full sum
      // (bitwise); a result above it is the pinned checkpoint partial.
      if (want <= limit) {
        EXPECT_EQ(Bits(want), Bits(full)) << "n=" << n << " limit=" << limit;
      } else {
        EXPECT_GT(want, limit);
      }
      for (Level level : SupportedLevels()) {
        const KernelTable& k = simd::KernelsFor(level);
        EXPECT_EQ(Bits(k.sum_squared_diff_ea(x.data(), y.data(), n, limit)),
                  Bits(want))
            << "n=" << n << " limit=" << limit
            << " level=" << simd::LevelName(level);
      }
    }
    // A NaN sum never abandons (NaN > limit is false) and must still
    // agree bitwise.
    if (n > 0) {
      RealVec nx = x;
      nx[0] = kNan;
      const double want =
          scalar.sum_squared_diff_ea(nx.data(), y.data(), n, 1.0);
      for (Level level : SupportedLevels()) {
        const KernelTable& k = simd::KernelsFor(level);
        EXPECT_EQ(Bits(k.sum_squared_diff_ea(nx.data(), y.data(), n, 1.0)),
                  Bits(want))
            << "nan n=" << n << " level=" << simd::LevelName(level);
      }
    }
  }
}

TEST(SimdKernels, MinDistSquaredBitwiseAcrossLevels) {
  const KernelTable& scalar = simd::KernelsFor(Level::kScalar);
  Rng rng(0x53);
  for (size_t n : kLengths) {
    RealVec p = testing::RandomRealVec(&rng, n, -100.0, 100.0);
    RealVec lo(n), hi(n);
    for (size_t i = 0; i < n; ++i) {
      double a = rng.Uniform(-100.0, 100.0);
      double b = rng.Uniform(-100.0, 100.0);
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    // Force all three gap cases: below lo, inside, above hi.
    if (n >= 3) {
      p[0] = lo[0] - 5.0;
      p[1] = (lo[1] + hi[1]) / 2;
      p[2] = hi[2] + 5.0;
    }
    const double want = scalar.min_dist_squared(p.data(), lo.data(),
                                                hi.data(), n);
    for (Level level : SupportedLevels()) {
      const KernelTable& k = simd::KernelsFor(level);
      EXPECT_EQ(Bits(k.min_dist_squared(p.data(), lo.data(), hi.data(), n)),
                Bits(want))
          << "n=" << n << " level=" << simd::LevelName(level);
    }
    // NaN coordinate: hardware max semantics (second operand wins) must
    // hold at every level.
    if (n > 0) {
      RealVec pn = p;
      pn[n / 2] = kNan;
      const double want_nan = scalar.min_dist_squared(pn.data(), lo.data(),
                                                      hi.data(), n);
      for (Level level : SupportedLevels()) {
        const KernelTable& k = simd::KernelsFor(level);
        EXPECT_EQ(
            Bits(k.min_dist_squared(pn.data(), lo.data(), hi.data(), n)),
            Bits(want_nan))
            << "nan n=" << n << " level=" << simd::LevelName(level);
      }
    }
  }
}

TEST(SimdKernels, MinDistSquaredBatchMatchesSingle) {
  Rng rng(0x54);
  const size_t n = 18;  // blocks + tail
  const size_t count = 37;
  const RealVec p = testing::RandomRealVec(&rng, n, -50.0, 50.0);
  std::vector<RealVec> los(count), his(count);
  std::vector<const double*> lo_ptrs(count), hi_ptrs(count);
  for (size_t i = 0; i < count; ++i) {
    los[i].resize(n);
    his[i].resize(n);
    for (size_t d = 0; d < n; ++d) {
      double a = rng.Uniform(-50.0, 50.0);
      double b = rng.Uniform(-50.0, 50.0);
      los[i][d] = std::min(a, b);
      his[i][d] = std::max(a, b);
    }
    lo_ptrs[i] = los[i].data();
    hi_ptrs[i] = his[i].data();
  }
  for (Level level : SupportedLevels()) {
    const KernelTable& k = simd::KernelsFor(level);
    std::vector<double> out(count, -1.0);
    k.min_dist_squared_batch(p.data(), lo_ptrs.data(), hi_ptrs.data(), count,
                             n, out.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(Bits(out[i]),
                Bits(k.min_dist_squared(p.data(), lo_ptrs[i], hi_ptrs[i], n)))
          << "rect " << i << " level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdKernels, MomentAndElementwiseKernelsBitwiseAcrossLevels) {
  const KernelTable& scalar = simd::KernelsFor(Level::kScalar);
  Rng rng(0x55);
  for (size_t n : kLengths) {
    for (const Adversarial& c : AdversarialPairs(n, &rng)) {
      const double sum = scalar.sum(c.x.data(), n);
      const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
      const double css = scalar.centered_sum_squares(c.x.data(), n, mean);
      const double energy = scalar.centered_sum_squares(c.x.data(), n, 0.0);
      RealVec shifted_want(n), scaled_want = c.x, widened_want(2 * n);
      scalar.scale_shift(c.x.data(), n, mean, 3.25, shifted_want.data());
      scalar.scale_inplace(scaled_want.data(), n, 0.125);
      scalar.widen_to_complex(c.x.data(), n, widened_want.data());
      for (Level level : SupportedLevels()) {
        const KernelTable& k = simd::KernelsFor(level);
        EXPECT_EQ(Bits(k.sum(c.x.data(), n)), Bits(sum))
            << c.name << " n=" << n << " " << simd::LevelName(level);
        EXPECT_EQ(Bits(k.centered_sum_squares(c.x.data(), n, mean)),
                  Bits(css))
            << c.name << " n=" << n << " " << simd::LevelName(level);
        EXPECT_EQ(Bits(k.centered_sum_squares(c.x.data(), n, 0.0)),
                  Bits(energy))
            << c.name << " n=" << n << " " << simd::LevelName(level);
        RealVec shifted(n), scaled = c.x, widened(2 * n);
        k.scale_shift(c.x.data(), n, mean, 3.25, shifted.data());
        k.scale_inplace(scaled.data(), n, 0.125);
        k.widen_to_complex(c.x.data(), n, widened.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(Bits(shifted[i]), Bits(shifted_want[i]))
              << c.name << " i=" << i << " " << simd::LevelName(level);
          ASSERT_EQ(Bits(scaled[i]), Bits(scaled_want[i]))
              << c.name << " i=" << i << " " << simd::LevelName(level);
          ASSERT_EQ(Bits(widened[2 * i]), Bits(widened_want[2 * i]))
              << c.name << " i=" << i << " " << simd::LevelName(level);
          ASSERT_EQ(Bits(widened[2 * i + 1]), 0u)
              << c.name << " i=" << i << " " << simd::LevelName(level);
        }
      }
    }
  }
}

TEST(SimdKernels, EarlyAbandonEuclideanWrapperAgrees) {
  // The series-level wrapper (series/distance.h) must map the kernel's
  // "checkpoint partial > limit" convention to nullopt, and return the
  // exact distance otherwise.
  Rng rng(0x56);
  const RealVec x = testing::RandomRealVec(&rng, 64);
  const RealVec y = testing::RandomRealVec(&rng, 64);
  const double d = std::sqrt(simd::SumSquaredDiff(x.data(), y.data(), 64));
  auto hit = EarlyAbandonEuclidean(x, y, d * 1.001);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(Bits(*hit), Bits(d));
  auto miss = EarlyAbandonEuclidean(x, y, d * 0.1);
  EXPECT_FALSE(miss.has_value());
}

// ---------------------------------------------------------------------------
// Approximate kNN invariants (KnnOptions) and cross-level query identity.
// ---------------------------------------------------------------------------

class ApproxKnnTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> MakeDb(size_t count, size_t length,
                                   uint64_t seed = 42) {
    DatabaseOptions options;
    options.directory = dir_.path();
    options.name = "db" + std::to_string(db_counter_++);
    auto db = Database::Create(options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    auto data = workload::MakeRandomWalkDataset(seed, count, length);
    for (const TimeSeries& s : data) {
      auto id = (*db)->Insert(s.name(), s.values());
      EXPECT_TRUE(id.ok()) << id.status().ToString();
    }
    EXPECT_TRUE((*db)->BuildIndex().ok());
    return std::move(*db);
  }

  TempDir dir_;
  int db_counter_ = 0;
};

TEST_F(ApproxKnnTest, ExactKnnBitIdenticalAcrossDispatchLevels) {
  LevelGuard guard;
  auto db = MakeDb(250, 64);
  Rng rng(0x57);
  for (int q = 0; q < 3; ++q) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    std::vector<std::vector<Match>> per_level;
    for (Level level : SupportedLevels()) {
      ASSERT_TRUE(simd::SetLevelForTesting(level));
      auto knn = db->Knn(query, 10);
      ASSERT_TRUE(knn.ok()) << knn.status().ToString();
      per_level.push_back(std::move(*knn));
    }
    for (size_t l = 1; l < per_level.size(); ++l) {
      ASSERT_EQ(per_level[l].size(), per_level[0].size());
      for (size_t i = 0; i < per_level[0].size(); ++i) {
        EXPECT_EQ(per_level[l][i].id, per_level[0][i].id) << "rank " << i;
        EXPECT_EQ(Bits(per_level[l][i].distance),
                  Bits(per_level[0][i].distance))
            << "rank " << i << " level "
            << simd::LevelName(SupportedLevels()[l]);
      }
    }
  }
}

TEST_F(ApproxKnnTest, EpsilonZeroBitIdenticalToExact) {
  auto db = MakeDb(200, 64);
  Rng rng(0x58);
  for (int q = 0; q < 3; ++q) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto exact = db->Knn(query, 10);
    ASSERT_TRUE(exact.ok());
    const QueryStats exact_stats = db->last_stats();
    // Probe budget high enough to never fire + epsilon 0: the stop rule
    // multiplies bounds by exactly 1.0, so every comparison — and thus
    // every answer bit — matches the default-options run.
    KnnOptions options;
    options.probe_budget = 100000;
    auto approx = db->Knn(query, 10, {}, options);
    ASSERT_TRUE(approx.ok());
    ASSERT_EQ(approx->size(), exact->size());
    for (size_t i = 0; i < exact->size(); ++i) {
      EXPECT_EQ((*approx)[i].id, (*exact)[i].id) << "rank " << i;
      EXPECT_EQ(Bits((*approx)[i].distance), Bits((*exact)[i].distance))
          << "rank " << i;
    }
    const QueryStats& stats = db->last_stats();
    EXPECT_EQ(stats.candidates, exact_stats.candidates);
    EXPECT_EQ(stats.max_error, 0.0);
    EXPECT_TRUE(stats.approx);       // non-default options were in effect
    EXPECT_FALSE(exact_stats.approx);
  }
}

TEST_F(ApproxKnnTest, EpsilonBoundsReportedAndTrueError) {
  auto db = MakeDb(300, 64);
  Rng rng(0x59);
  const size_t k = 10;
  for (double epsilon : {0.05, 0.2, 1.0}) {
    for (int q = 0; q < 3; ++q) {
      const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
      auto exact = db->Knn(query, k);
      ASSERT_TRUE(exact.ok());
      KnnOptions options;
      options.epsilon = epsilon;
      auto approx = db->Knn(query, k, {}, options);
      ASSERT_TRUE(approx.ok());
      ASSERT_EQ(approx->size(), k);
      const QueryStats& stats = db->last_stats();
      EXPECT_TRUE(stats.approx);
      // The a-priori guarantee, both as reported and against the truth:
      // reported error within epsilon, and the k-th reported distance
      // within (1+epsilon) of the true k-th distance.
      EXPECT_LE(stats.max_error, epsilon + 1e-12) << "eps=" << epsilon;
      EXPECT_LE((*approx)[k - 1].distance,
                (1.0 + epsilon) * (*exact)[k - 1].distance + 1e-12)
          << "eps=" << epsilon;
      // Every reported distance is at least the true distance of that
      // rank (the approx answer can only miss neighbors, never invent
      // closer ones).
      for (size_t i = 0; i < k; ++i) {
        EXPECT_GE((*approx)[i].distance, (*exact)[i].distance - 1e-12)
            << "rank " << i;
      }
      // pruned accounts for everything not verified.
      EXPECT_EQ(stats.candidates + stats.pruned, 300u);
    }
  }
}

TEST_F(ApproxKnnTest, ProbeBudgetCapsVerificationWork) {
  auto db = MakeDb(250, 64);
  Rng rng(0x5a);
  const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
  KnnOptions options;
  options.probe_budget = 20;
  auto approx = db->Knn(query, 10, {}, options);
  ASSERT_TRUE(approx.ok());
  const QueryStats& stats = db->last_stats();
  EXPECT_LE(stats.candidates, 20u);
  EXPECT_EQ(approx->size(), 10u);  // budget > k: still a full answer set
  EXPECT_TRUE(stats.approx);
  // A budget below k can only return what it verified, and the missing
  // ranks make any finite error bound unsound: max_error must be
  // infinite, never a false 0.
  options.probe_budget = 4;
  approx = db->Knn(query, 10, {}, options);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx->size(), 4u);
  EXPECT_LE(db->last_stats().candidates, 4u);
  EXPECT_TRUE(std::isinf(db->last_stats().max_error));
}

TEST_F(ApproxKnnTest, FirstLeafHeuristicStopsAfterKVerified) {
  auto db = MakeDb(250, 64);
  Rng rng(0x5b);
  const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
  KnnOptions options;
  options.stop_after_first_leaf = true;
  auto approx = db->Knn(query, 10, {}, options);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx->size(), 10u);
  // Copy: last_stats() is reset by the exact query below.
  const QueryStats stats = db->last_stats();
  // Stops at the first emission after the 10th verification.
  EXPECT_EQ(stats.candidates, 10u);
  EXPECT_TRUE(stats.approx);
  EXPECT_GE(stats.max_error, 0.0);
  // The observed error against the truth matches what was reported.
  auto exact = db->Knn(query, 10);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE((*approx)[9].distance,
            (1.0 + stats.max_error) * (*exact)[9].distance + 1e-9);
}

TEST_F(ApproxKnnTest, NegativeEpsilonRejected) {
  auto db = MakeDb(20, 32);
  KnnOptions options;
  options.epsilon = -0.5;
  EXPECT_TRUE(
      db->Knn(RealVec(32, 0.0), 3, {}, options).status().IsInvalidArgument());
}

TEST_F(ApproxKnnTest, ApproxOptionsThroughBatchEngine) {
  auto db = MakeDb(200, 64);
  Rng rng(0x5c);
  const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
  engine::BatchQuery exact_q;
  exact_q.kind = engine::BatchQueryKind::kKnn;
  exact_q.query = query;
  exact_q.k = 5;
  engine::BatchQuery approx_q = exact_q;
  approx_q.knn.epsilon = 0.3;
  auto results = db->RunBatch({exact_q, approx_q}, 2);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 2u);
  ASSERT_TRUE((*results)[0].status.ok());
  ASSERT_TRUE((*results)[1].status.ok());
  EXPECT_FALSE((*results)[0].stats.approx);
  EXPECT_TRUE((*results)[1].stats.approx);
  EXPECT_LE((*results)[1].stats.max_error, 0.3 + 1e-12);
  EXPECT_LE((*results)[1].stats.candidates, (*results)[0].stats.candidates);
  ASSERT_EQ((*results)[1].matches.size(), 5u);
  EXPECT_LE((*results)[1].matches[4].distance,
            1.3 * (*results)[0].matches[4].distance + 1e-12);
}

}  // namespace
}  // namespace tsq
