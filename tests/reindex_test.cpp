// Copyright (c) 2026 The tsq Authors.
//
// The v4 index concurrency contract under test: epoch-published
// snapshots, the delta index, and the merge that folds the delta into a
// fresh main tree while queries keep answering. Covers the DeltaIndex
// watermark/compaction semantics in isolation, delta visibility (a
// series is queryable the moment InsertBatch returns), answer
// preservation across merges, the gated-merge handshake (queries pinned
// to the old epoch finish correctly while the swap publishes, and a
// pinned old snapshot stays valid after it), crash-shaped reopens
// (stale .idx.tmp, relation ahead of the on-disk tree), the background
// merge thread, and a TSan-sized ingest+query+merge race. The CI TSan
// job runs this binary alongside concurrency_stress_test.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/delta_index.h"
#include "core/index_snapshot.h"
#include "core/queries.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using engine::BatchQuery;
using engine::BatchQueryKind;
using engine::BatchResult;

constexpr size_t kNumSeries = 80;
constexpr size_t kLength = 64;
constexpr uint64_t kSeed = 20260808;

spatial::Point MakePoint(double a, double b) { return spatial::Point{a, b}; }

// ---------------------------------------------------------------------------
// DeltaIndex in isolation.
// ---------------------------------------------------------------------------

TEST(DeltaIndexTest, WatermarkAdvancesOverOutOfOrderPuts) {
  DeltaIndex delta(/*base=*/10, /*dims=*/2);
  EXPECT_EQ(delta.base(), 10u);
  EXPECT_EQ(delta.visible(), 0u);

  // Out-of-order arrival: the watermark only moves over dense prefixes.
  ASSERT_TRUE(delta.Put(12, MakePoint(12.0, -12.0)).ok());
  EXPECT_EQ(delta.visible(), 0u);
  ASSERT_TRUE(delta.Put(10, MakePoint(10.0, -10.0)).ok());
  EXPECT_EQ(delta.visible(), 1u);
  ASSERT_TRUE(delta.Put(11, MakePoint(11.0, -11.0)).ok());
  EXPECT_EQ(delta.visible(), 3u);

  for (uint64_t slot = 0; slot < 3; ++slot) {
    const spatial::Point p = delta.PointAt(slot);
    EXPECT_EQ(p[0], 10.0 + double(slot));
    EXPECT_EQ(p[1], -10.0 - double(slot));
  }
}

TEST(DeltaIndexTest, PutSpansChunksAndRejectsBadArguments) {
  DeltaIndex delta(/*base=*/0, /*dims=*/1);
  // Straddle the first chunk boundary.
  const uint64_t n = DeltaIndex::kChunkEntries + 5;
  for (uint64_t id = 0; id < n; ++id) {
    ASSERT_TRUE(delta.Put(id, spatial::Point{double(id)}).ok());
  }
  EXPECT_EQ(delta.visible(), n);
  EXPECT_EQ(delta.PointAt(DeltaIndex::kChunkEntries)[0],
            double(DeltaIndex::kChunkEntries));

  DeltaIndex based(/*base=*/100, /*dims=*/2);
  EXPECT_TRUE(based.Put(99, MakePoint(0, 0)).IsInvalidArgument());
  EXPECT_TRUE(based.Put(100, spatial::Point{1.0}).IsInvalidArgument());
  // One past the fixed capacity: the caller's cue to merge.
  const SeriesId beyond =
      100 + DeltaIndex::kChunkEntries * DeltaIndex::kMaxChunks;
  EXPECT_TRUE(based.Put(beyond, MakePoint(0, 0)).IsOutOfRange());
}

TEST(DeltaIndexTest, CompactKeepsReadySlotsAtOrAboveCutoff) {
  DeltaIndex old(/*base=*/10, /*dims=*/1);
  for (SeriesId id = 10; id < 20; ++id) {
    ASSERT_TRUE(old.Put(id, spatial::Point{double(id)}).ok());
  }
  // An in-flight batch left a gap: 21 ready, 20 missing.
  ASSERT_TRUE(old.Put(21, spatial::Point{21.0}).ok());
  EXPECT_EQ(old.visible(), 10u);

  auto fresh = DeltaIndex::Compact(old, /*cutoff=*/15);
  EXPECT_EQ(fresh->base(), 15u);
  // 15..19 are dense; 21 is ready but 20 is not, so it stays invisible.
  EXPECT_EQ(fresh->visible(), 5u);
  for (uint64_t slot = 0; slot < 5; ++slot) {
    EXPECT_EQ(fresh->PointAt(slot)[0], 15.0 + double(slot));
  }
  // The late slot 20 arriving on the fresh delta re-densifies through 21.
  ASSERT_TRUE(fresh->Put(20, spatial::Point{20.0}).ok());
  EXPECT_EQ(fresh->visible(), 7u);
  EXPECT_EQ(fresh->PointAt(6)[0], 21.0);
}

// ---------------------------------------------------------------------------
// Database-level merge behavior.
// ---------------------------------------------------------------------------

class ReindexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = workload::MakeRandomWalkDataset(kSeed, kNumSeries, kLength);
    DatabaseOptions options;
    options.directory = dir_.path();
    options.name = "reindex";
    db_ = Database::Create(options).value();
    // Index the first half; the second half stays for delta ingest.
    for (size_t i = 0; i < kNumSeries / 2; ++i) {
      ASSERT_TRUE(db_->Insert(data_[i].name(), data_[i].values()).ok());
    }
    ASSERT_TRUE(db_->BuildIndex().ok());
  }

  /// Ingests the second half of the dataset (lands in the delta).
  void IngestSecondHalf() {
    std::vector<std::string> names;
    std::vector<RealVec> values;
    for (size_t i = kNumSeries / 2; i < kNumSeries; ++i) {
      names.push_back(data_[i].name());
      values.push_back(data_[i].values());
    }
    auto ids = db_->InsertBatch(names, values, /*threads=*/3);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  }

  /// A mixed range/kNN batch over stored series, plain and transformed.
  std::vector<BatchQuery> MakeBatch() const {
    QuerySpec smoothed;
    smoothed.transform =
        FeatureTransform::Spectral(transforms::MovingAverage(kLength, 4));
    std::vector<BatchQuery> batch;
    for (size_t i = 0; i < 12; ++i) {
      BatchQuery q;
      q.query = data_[(i * 13) % kNumSeries].values();
      if (i % 2 == 0) {
        q.kind = BatchQueryKind::kRange;
        q.epsilon = (i % 4 == 0) ? 2.0 : 5.0;
      } else {
        q.kind = BatchQueryKind::kKnn;
        q.k = 4;
      }
      if (i % 5 == 3) q.spec = smoothed;
      batch.push_back(std::move(q));
    }
    return batch;
  }

  static void ExpectSameResults(const std::vector<BatchResult>& actual,
                                const std::vector<BatchResult>& expected,
                                const std::string& what) {
    ASSERT_EQ(actual.size(), expected.size()) << what;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(actual[i].status.ok()) << what << " query " << i;
      ASSERT_EQ(actual[i].matches.size(), expected[i].matches.size())
          << what << " query " << i;
      for (size_t m = 0; m < expected[i].matches.size(); ++m) {
        EXPECT_EQ(actual[i].matches[m].id, expected[i].matches[m].id)
            << what << " query " << i << " match " << m;
        EXPECT_EQ(actual[i].matches[m].distance,
                  expected[i].matches[m].distance)
            << what << " query " << i << " match " << m;
      }
    }
  }

  testing::TempDir dir_;
  std::vector<TimeSeries> data_;
  std::unique_ptr<Database> db_;
};

TEST_F(ReindexTest, DeltaIsQueryableTheMomentInsertReturns) {
  IngestSecondHalf();
  // No merge has run: everything past the build sits in the delta.
  const DatabaseStats stats = db_->StatsSnapshot();
  EXPECT_EQ(stats.tree_entries, kNumSeries / 2);
  EXPECT_EQ(stats.delta_entries, kNumSeries - kNumSeries / 2);
  EXPECT_EQ(stats.merges_completed, 0u);

  // Every unmerged series answers an exact-match range query, and kNN
  // sees it as its own nearest neighbor.
  for (size_t i = kNumSeries / 2; i < kNumSeries; ++i) {
    auto matches = db_->RangeQuery(data_[i].values(), 1e-9);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty()) << "series " << i;
    EXPECT_EQ((*matches)[0].id, i);
    auto knn = db_->Knn(data_[i].values(), 1);
    ASSERT_TRUE(knn.ok());
    ASSERT_EQ(knn->size(), 1u);
    EXPECT_EQ((*knn)[0].id, i);
    EXPECT_EQ((*knn)[0].distance, 0.0);
  }
}

TEST_F(ReindexTest, MergePreservesAnswersBitIdentically) {
  IngestSecondHalf();
  const std::vector<BatchQuery> batch = MakeBatch();
  const std::vector<BatchResult> before = db_->RunBatch(batch, 2).value();
  auto join_before = db_->ParallelSelfJoin(2.0, std::nullopt, 2, nullptr);
  ASSERT_TRUE(join_before.ok());
  const uint64_t epoch_before = db_->StatsSnapshot().index_epoch;

  auto epoch = db_->Reindex();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_GT(*epoch, epoch_before);

  const DatabaseStats stats = db_->StatsSnapshot();
  EXPECT_EQ(stats.tree_entries, kNumSeries);
  EXPECT_EQ(stats.delta_entries, 0u);
  EXPECT_EQ(stats.merges_completed, 1u);
  EXPECT_EQ(stats.index_epoch, *epoch);

  const std::vector<BatchResult> after = db_->RunBatch(batch, 2).value();
  ExpectSameResults(after, before, "post-merge batch");
  auto join_after = db_->ParallelSelfJoin(2.0, std::nullopt, 2, nullptr);
  ASSERT_TRUE(join_after.ok());
  ASSERT_EQ(join_after->size(), join_before->size());
  for (size_t i = 0; i < join_before->size(); ++i) {
    EXPECT_EQ((*join_after)[i].first, (*join_before)[i].first);
    EXPECT_EQ((*join_after)[i].second, (*join_before)[i].second);
    EXPECT_EQ((*join_after)[i].distance, (*join_before)[i].distance);
  }

  // Nothing left to fold: a second reindex is a no-op on the same epoch.
  auto again = db_->Reindex();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *epoch);
  EXPECT_EQ(db_->StatsSnapshot().merges_completed, 1u);
}

TEST_F(ReindexTest, GatedMergeHandshakeKeepsOldEpochAnswering) {
  IngestSecondHalf();
  const std::vector<BatchQuery> batch = MakeBatch();
  const std::vector<BatchResult> baseline = db_->RunBatch(batch, 2).value();

  // Gate the merge between the index-file rename and the epoch publish:
  // the swap is committed on disk but not yet visible to queries.
  std::mutex m;
  std::condition_variable cv;
  bool merge_at_gate = false;
  bool release_merge = false;
  db_->SetMergeHookForTesting([&] {
    std::unique_lock<std::mutex> lock(m);
    merge_at_gate = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release_merge; });
  });

  // Pin the pre-merge snapshot the way an in-flight query would.
  auto old_snap = db_->CurrentSnapshot();
  const uint64_t old_epoch = old_snap->epoch;

  std::thread merger([&] {
    auto epoch = db_->Reindex();
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return merge_at_gate; });
  }

  // The swap has not published: queries still run on the old epoch and
  // answer the baseline.
  EXPECT_EQ(db_->StatsSnapshot().index_epoch, old_epoch);
  const std::vector<BatchResult> gated = db_->RunBatch(batch, 2).value();
  ExpectSameResults(gated, baseline, "query at the merge gate");

  {
    std::lock_guard<std::mutex> lock(m);
    release_merge = true;
  }
  cv.notify_all();
  merger.join();
  db_->SetMergeHookForTesting(nullptr);

  // Published: new epoch, delta drained, same answers.
  EXPECT_GT(db_->StatsSnapshot().index_epoch, old_epoch);
  EXPECT_EQ(db_->StatsSnapshot().delta_entries, 0u);
  const std::vector<BatchResult> after = db_->RunBatch(batch, 2).value();
  ExpectSameResults(after, baseline, "query after the swap");

  // Grace period: the pinned old snapshot outlives the swap — a query
  // still holding it keeps reading the superseded tree (whose file was
  // renamed over) and gets the exact pre-merge answer.
  const IndexView old_view(*old_snap);
  EXPECT_EQ(old_view.total_series(), kNumSeries);
  for (size_t i = 0; i < kNumSeries; i += 7) {
    std::vector<Match> out;
    QueryStats stats;
    ASSERT_TRUE(IndexRangeQuery(old_view, *db_->relation(),
                                data_[i].values(), 1e-9, QuerySpec{}, &out,
                                &stats)
                    .ok());
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].id, i);
  }
}

TEST_F(ReindexTest, CrashShapedReopensRecover) {
  IngestSecondHalf();
  ASSERT_TRUE(db_->Flush().ok());
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "reindex";

  // Crash before any merge: the on-disk tree covers half, the relation
  // all. Open rebuilds the tail into the delta.
  db_.reset();
  {
    auto reopened = Database::Open(options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->size(), kNumSeries);
    const DatabaseStats stats = (*reopened)->StatsSnapshot();
    EXPECT_EQ(stats.tree_entries, kNumSeries / 2);
    EXPECT_EQ(stats.delta_entries, kNumSeries - kNumSeries / 2);
    for (size_t i = 0; i < kNumSeries; i += 9) {
      auto matches = (*reopened)->RangeQuery(data_[i].values(), 1e-9);
      ASSERT_TRUE(matches.ok());
      ASSERT_FALSE(matches->empty());
      EXPECT_EQ((*matches)[0].id, i);
    }

    // Crash mid-build: a leftover .idx.tmp must not survive a reopen.
    ASSERT_TRUE((*reopened)->Reindex().ok());
    ASSERT_TRUE((*reopened)->Flush().ok());
  }
  const std::string tmp_path = dir_.path() + "/reindex.idx.tmp";
  { std::ofstream(tmp_path) << "half-built merge junk"; }
  ASSERT_TRUE(std::filesystem::exists(tmp_path));
  {
    auto reopened = Database::Open(options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_FALSE(std::filesystem::exists(tmp_path));
    // Crash after the rename: the merged tree covers everything, the
    // delta reopens empty, answers intact.
    const DatabaseStats stats = (*reopened)->StatsSnapshot();
    EXPECT_EQ(stats.tree_entries, kNumSeries);
    EXPECT_EQ(stats.delta_entries, 0u);
    auto matches =
        (*reopened)->RangeQuery(data_[kNumSeries - 1].values(), 1e-9);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    EXPECT_EQ((*matches)[0].id, kNumSeries - 1);
  }
}

TEST_F(ReindexTest, BackgroundMergeThreadFoldsDelta) {
  // Reopen with the merge thread on a tight cadence.
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "reindex";
  options.merge_interval_ms = 5;
  options.merge_min_delta = 1;
  db_ = Database::Open(options).value();

  IngestSecondHalf();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const DatabaseStats stats = db_->StatsSnapshot();
    if (stats.delta_entries == 0 && stats.merges_completed >= 1 &&
        stats.tree_entries == kNumSeries) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const DatabaseStats stats = db_->StatsSnapshot();
  EXPECT_EQ(stats.delta_entries, 0u);
  EXPECT_EQ(stats.tree_entries, kNumSeries);
  EXPECT_GE(stats.merges_completed, 1u);
  auto matches = db_->RangeQuery(data_[kNumSeries - 1].values(), 1e-9);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].id, kNumSeries - 1);
}

TEST_F(ReindexTest, ReindexRacesIngestAndQueriesSafely) {
  // The v4 headline race, TSan-sized: InsertBatch writers, RunBatch
  // readers and repeated merges all at once. The ingested series are
  // flat with means ~1e6 outside every search rectangle (and a zero
  // normal form sqrt(kLength) away from any unit-variance query), so
  // every reader's answer set provably never changes no matter how much
  // ingest landed or which epoch it pinned.
  std::vector<BatchQuery> batch;
  for (size_t i = 0; i < 8; ++i) {
    BatchQuery q;
    q.kind = BatchQueryKind::kRange;
    q.query = data_[(i * 13) % (kNumSeries / 2)].values();
    q.epsilon = (i % 2 == 0) ? 2.0 : 4.0;
    batch.push_back(std::move(q));
  }
  const std::vector<BatchResult> baseline = db_->RunBatch(batch, 2).value();

  constexpr size_t kWriterThreads = 2;
  constexpr size_t kBatchesPerWriter = 3;
  constexpr size_t kBatchRecords = 20;
  constexpr int kReaderReps = 4;
  constexpr int kMerges = 4;

  auto make_far = [](uint64_t seed, size_t count) {
    std::vector<std::string> names;
    std::vector<RealVec> values;
    for (size_t i = 0; i < count; ++i) {
      names.push_back("far_" + std::to_string(seed) + "_" +
                      std::to_string(i));
      values.emplace_back(kLength, 1e6 + double(seed * 64 + i));
    }
    return std::make_pair(std::move(names), std::move(values));
  };

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < kReaderReps; ++rep) {
        Result<std::vector<BatchResult>> results = db_->RunBatch(batch, 2);
        if (!results.ok() || results->size() != batch.size()) {
          failed.store(true);
          return;
        }
        for (size_t i = 0; i < batch.size(); ++i) {
          if (!(*results)[i].status.ok() ||
              (*results)[i].matches.size() != baseline[i].matches.size()) {
            failed.store(true);
            return;
          }
          for (size_t m = 0; m < baseline[i].matches.size(); ++m) {
            if ((*results)[i].matches[m].id != baseline[i].matches[m].id ||
                (*results)[i].matches[m].distance !=
                    baseline[i].matches[m].distance) {
              failed.store(true);
              return;
            }
          }
        }
      }
    });
  }
  for (size_t w = 0; w < kWriterThreads; ++w) {
    threads.emplace_back([&, w] {
      for (size_t b = 0; b < kBatchesPerWriter; ++b) {
        auto [names, values] = make_far(7000 + w * 100 + b, kBatchRecords);
        auto ids = db_->InsertBatch(names, values, /*threads=*/2);
        if (!ids.ok() || ids->size() != kBatchRecords) {
          failed.store(true);
          return;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kMerges; ++i) {
      if (!db_->Reindex().ok()) {
        failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load()) << "a racing call diverged or failed";

  const uint64_t expected_size =
      kNumSeries / 2 + kWriterThreads * kBatchesPerWriter * kBatchRecords;
  EXPECT_EQ(db_->size(), expected_size);
  ASSERT_TRUE(db_->Reindex().ok());
  EXPECT_EQ(db_->index()->size(), expected_size);
  EXPECT_EQ(db_->StatsSnapshot().delta_entries, 0u);
  const std::vector<BatchResult> after = db_->RunBatch(batch, 2).value();
  ExpectSameResults(after, baseline, "post-race batch");
}

}  // namespace
}  // namespace tsq
