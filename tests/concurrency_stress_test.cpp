// Copyright (c) 2026 The tsq Authors.
//
// Concurrency stress suite for the v3 read contract and the v2 write
// contract: many threads hammering mixed batch workloads (and parallel
// self-joins) against one Database — through one shared engine and
// through per-thread engines — while writers append to a separate
// relation AND ingest into the queried database itself (InsertBatch
// racing RunBatch, the v2 write contract's headline race). Under v3 the
// hammered index fetches ride the lock-free optimistic hit path and
// misses read with the shard lock dropped, so these races double as a
// seqlock memory-model workout; under v2 the ingest side exercises the
// per-segment append turnstile and the lock-free record directory.
// Asserts that every concurrent result is bit-identical to the
// sequential path and that the exact per-query stat counters lose
// nothing (their sum equals the shared engine counters' delta). Sized to
// stay fast under ThreadSanitizer; the CI TSan job runs this binary (and
// buffer_pool_concurrency_test, the pool-targeted suite) to pin the
// memory model down.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "engine/query_engine.h"
#include "gtest/gtest.h"
#include "storage/relation.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using engine::BatchQuery;
using engine::BatchQueryKind;
using engine::BatchResult;
using engine::QueryEngine;
using engine::QueryEngineOptions;

constexpr size_t kNumSeries = 120;
constexpr size_t kLength = 64;
constexpr uint64_t kSeed = 20260801;
constexpr size_t kHammerThreads = 4;
constexpr int kRepsPerThread = 3;

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = workload::MakeRandomWalkDataset(kSeed, kNumSeries, kLength);
    DatabaseOptions options;
    options.directory = dir_.path();
    options.name = "stress";
    // Small sharded pool: eviction traffic crosses shard boundaries all
    // the time, which is exactly the churn the stress wants to race.
    options.buffer_pool_frames = 64;
    options.buffer_pool_shards = 4;
    db_ = Database::Create(options).value();
    for (const TimeSeries& s : data_) {
      ASSERT_TRUE(db_->Insert(s.name(), s.values()).ok());
    }
    ASSERT_TRUE(db_->BuildIndex().ok());
  }

  /// A mixed, seeded workload (stored + perturbed queries, plain and
  /// transformed specs, range and kNN).
  std::vector<BatchQuery> MakeBatch(size_t count) const {
    Rng rng(kSeed + 7);
    QuerySpec smoothed;
    smoothed.transform =
        FeatureTransform::Spectral(transforms::MovingAverage(kLength, 4));
    std::vector<BatchQuery> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      BatchQuery q;
      RealVec values = data_[(i * 17) % kNumSeries].values();
      if (i % 3 == 1) {
        for (double& v : values) v += rng.Uniform(-0.5, 0.5);
      }
      q.query = std::move(values);
      if (i % 4 == 2) {
        q.kind = BatchQueryKind::kKnn;
        q.k = 1 + i % 5;
      } else {
        q.kind = BatchQueryKind::kRange;
        q.epsilon = (i % 2 == 0) ? 2.0 : 6.0;
      }
      if (i % 5 == 3) q.spec = smoothed;
      batch.push_back(std::move(q));
    }
    return batch;
  }

  static void ExpectSameMatches(const std::vector<Match>& actual,
                                const std::vector<Match>& expected,
                                const std::string& what) {
    ASSERT_EQ(actual.size(), expected.size()) << what;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id) << what << " at " << i;
      EXPECT_EQ(actual[i].distance, expected[i].distance)
          << what << " at " << i;
    }
  }

  testing::TempDir dir_;
  std::vector<TimeSeries> data_;
  std::unique_ptr<Database> db_;
};

TEST_F(ConcurrencyStressTest, HammeredBatchesMatchSequentialExactly) {
  const std::vector<BatchQuery> batch = MakeBatch(24);

  // Sequential ground truth through the single-query Database paths.
  std::vector<std::vector<Match>> expected;
  for (const BatchQuery& q : batch) {
    expected.push_back(q.kind == BatchQueryKind::kKnn
                           ? db_->Knn(q.query, q.k, q.spec).value()
                           : db_->RangeQuery(q.query, q.epsilon, q.spec)
                                 .value());
  }

  // One shared engine, hammered from kHammerThreads caller threads at
  // once (RunBatch is documented thread-safe on a shared engine).
  QueryEngineOptions opts;
  opts.threads = 4;
  QueryEngine engine(db_->index(), db_->relation(),
                     /*subsequence_index=*/nullptr, opts);
  std::vector<std::vector<std::vector<BatchResult>>> runs(kHammerThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kHammerThreads);
    for (size_t t = 0; t < kHammerThreads; ++t) {
      threads.emplace_back([&engine, &batch, &runs, t] {
        for (int rep = 0; rep < kRepsPerThread; ++rep) {
          runs[t].push_back(engine.RunBatch(batch));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  for (size_t t = 0; t < kHammerThreads; ++t) {
    ASSERT_EQ(runs[t].size(), static_cast<size_t>(kRepsPerThread));
    for (int rep = 0; rep < kRepsPerThread; ++rep) {
      const std::vector<BatchResult>& results = runs[t][rep];
      ASSERT_EQ(results.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(results[i].status.ok())
            << "thread " << t << " rep " << rep << " query " << i << ": "
            << results[i].status.ToString();
        ExpectSameMatches(results[i].matches, expected[i],
                          "thread " + std::to_string(t) + " rep " +
                              std::to_string(rep) + " query " +
                              std::to_string(i));
      }
    }
  }
}

TEST_F(ConcurrencyStressTest, ConcurrentDatabaseRunBatchAtMixedThreadCounts) {
  // Regression: Database::RunBatch from several threads at once, each
  // asking for a *different* worker count — the per-thread-count engine
  // cache must never destroy an engine another caller is inside (the old
  // single-slot cache rebuilt on every thread-count change).
  const std::vector<BatchQuery> batch = MakeBatch(12);
  std::vector<std::vector<Match>> expected;
  for (const BatchQuery& q : batch) {
    expected.push_back(q.kind == BatchQueryKind::kKnn
                           ? db_->Knn(q.query, q.k, q.spec).value()
                           : db_->RangeQuery(q.query, q.epsilon, q.spec)
                                 .value());
  }

  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  std::atomic<bool> failed{false};
  for (size_t t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      const size_t workers = 1 + t % 4;  // 1,2,3,4 — all distinct engines
      for (int rep = 0; rep < kRepsPerThread; ++rep) {
        Result<std::vector<BatchResult>> results =
            db_->RunBatch(batch, workers);
        if (!results.ok() || results->size() != batch.size()) {
          failed.store(true);
          return;
        }
        for (size_t i = 0; i < batch.size(); ++i) {
          if (!(*results)[i].status.ok() ||
              (*results)[i].matches.size() != expected[i].size()) {
            failed.store(true);
            return;
          }
          for (size_t m = 0; m < expected[i].size(); ++m) {
            if ((*results)[i].matches[m].id != expected[i][m].id ||
                (*results)[i].matches[m].distance !=
                    expected[i][m].distance) {
              failed.store(true);
              return;
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load())
      << "a concurrent Database::RunBatch diverged or failed";
}

TEST_F(ConcurrencyStressTest, NoStatCounterLossUnderConcurrency) {
  // The exact-stats contract, raced: with every traversal mirrored into
  // thread-local counters, the per-query deltas must add up to the shared
  // engine counters' delta with nothing lost or double-counted — even
  // while kHammerThreads batches interleave on one engine.
  const std::vector<BatchQuery> batch = MakeBatch(16);
  QueryEngineOptions opts;
  opts.threads = 4;
  QueryEngine engine(db_->index(), db_->relation(),
                     /*subsequence_index=*/nullptr, opts);
  db_->index()->ResetStats();

  std::atomic<uint64_t> nodes{0}, transforms{0}, reads{0};
  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (size_t t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < kRepsPerThread; ++rep) {
        const std::vector<BatchResult> results = engine.RunBatch(batch);
        for (const BatchResult& r : results) {
          ASSERT_TRUE(r.status.ok()) << r.status.ToString();
          nodes.fetch_add(r.stats.nodes_visited);
          transforms.fetch_add(r.stats.rect_transforms);
          reads.fetch_add(r.stats.disk_reads);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_GT(nodes.load(), 0u);
  EXPECT_EQ(nodes.load(), db_->index()->tree()->stats().nodes_visited);
  EXPECT_EQ(transforms.load(),
            db_->index()->tree()->stats().rect_transforms);
  EXPECT_EQ(reads.load(), db_->index()->pool()->stats().disk_reads);
}

TEST_F(ConcurrencyStressTest, BatchesAndSelfJoinsRaceAWriterSafely) {
  // Readers hammer the frozen index stack (batches + parallel self-joins)
  // while a writer appends to a *separate* relation and a tail reader
  // follows it — the full v2 story in one race: sharded pool, parallel
  // descent, thread-safe PageFile, pread-based relation reads.
  const std::vector<BatchQuery> batch = MakeBatch(12);
  const double join_eps = 5.0;
  const auto transform =
      FeatureTransform::Spectral(transforms::MovingAverage(kLength, 4));

  const std::vector<JoinPair> join_baseline =
      db_->ParallelSelfJoin(join_eps, transform, 1).value();
  const std::vector<BatchResult> batch_baseline =
      db_->RunBatch(batch, 1).value();

  QueryEngineOptions opts;
  opts.threads = 4;
  QueryEngine engine(db_->index(), db_->relation(),
                     /*subsequence_index=*/nullptr, opts);

  constexpr size_t kWriterRecords = 150;
  auto side_relation =
      Relation::Create(dir_.file("writer_side.rel")).value();

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  // Two batch hammers.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < kRepsPerThread; ++rep) {
        const std::vector<BatchResult> results = engine.RunBatch(batch);
        for (size_t i = 0; i < results.size(); ++i) {
          if (!results[i].status.ok() ||
              results[i].matches.size() !=
                  batch_baseline[i].matches.size()) {
            failed.store(true);
            return;
          }
          for (size_t m = 0; m < results[i].matches.size(); ++m) {
            if (results[i].matches[m].id !=
                    batch_baseline[i].matches[m].id ||
                results[i].matches[m].distance !=
                    batch_baseline[i].matches[m].distance) {
              failed.store(true);
              return;
            }
          }
        }
      }
    });
  }

  // One self-join hammer (shares the engine's pool with the batches).
  threads.emplace_back([&] {
    for (int rep = 0; rep < kRepsPerThread; ++rep) {
      Result<std::vector<JoinPair>> pairs =
          engine.SelfJoin(join_eps, transform, nullptr);
      if (!pairs.ok() || pairs->size() != join_baseline.size()) {
        failed.store(true);
        return;
      }
      for (size_t i = 0; i < pairs->size(); ++i) {
        if ((*pairs)[i].first != join_baseline[i].first ||
            (*pairs)[i].second != join_baseline[i].second ||
            (*pairs)[i].distance != join_baseline[i].distance) {
          failed.store(true);
          return;
        }
      }
    }
  });

  // The writer: appends to its own relation (single appender, per the
  // Relation contract).
  threads.emplace_back([&] {
    for (size_t i = 0; i < kWriterRecords; ++i) {
      const RealVec values = {static_cast<double>(i), 1.0, 2.0};
      const ComplexVec dft = {Complex(static_cast<double>(i), 0.0)};
      Result<SeriesId> id =
          side_relation->Append("w" + std::to_string(i), values, dft);
      if (!id.ok() || *id != i) {
        failed.store(true);
        return;
      }
    }
  });

  // The tail reader: chases the writer with lock-free pread Gets.
  threads.emplace_back([&] {
    uint64_t seen = 0;
    while (seen < kWriterRecords && !failed.load()) {
      const uint64_t size = side_relation->size();
      for (; seen < size; ++seen) {
        Result<SeriesRecord> rec = side_relation->Get(seen);
        if (!rec.ok() || rec->values.empty() ||
            rec->values[0] != static_cast<double>(seen)) {
          failed.store(true);
          return;
        }
      }
      std::this_thread::yield();
    }
  });

  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load()) << "a concurrent result diverged from the "
                                 "sequential baseline (see thread bodies)";

  EXPECT_EQ(side_relation->size(), kWriterRecords);
  Result<SeriesRecord> last = side_relation->Get(kWriterRecords - 1);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->name, "w" + std::to_string(kWriterRecords - 1));
}

TEST_F(ConcurrencyStressTest, InsertBatchRacesRunBatchSafely) {
  // The v2 write contract's headline race: concurrent InsertBatch calls
  // (and single Inserts) ingesting into the queried database while
  // RunBatch callers hammer it. The ingested series are flat: a flat
  // series' normal form is the zero vector, whose distance to any
  // unit-variance query normal form is exactly sqrt(kLength) = 8 — above
  // every epsilon used here under the shift/scale-invariant similarity —
  // and its mean sits ~1e6 outside every search rectangle. So each
  // query's answer set is unchanged no matter how much of the ingest has
  // landed: the range results must stay bit-identical to the pre-ingest
  // baseline throughout, and afterwards the relation, directory and
  // index must agree. (Range-only workload: a kNN's k-th neighbor has no
  // such separation margin.)
  QuerySpec smoothed;
  smoothed.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(kLength, 4));
  std::vector<BatchQuery> batch;
  for (size_t i = 0; i < 12; ++i) {
    BatchQuery q;
    q.kind = BatchQueryKind::kRange;
    q.query = data_[(i * 17) % kNumSeries].values();
    q.epsilon = (i % 2 == 0) ? 2.0 : 4.0;
    if (i % 5 == 3) q.spec = smoothed;
    batch.push_back(std::move(q));
  }
  const std::vector<BatchResult> baseline = db_->RunBatch(batch, 2).value();

  constexpr size_t kWriterThreads = 2;
  constexpr size_t kBatchesPerWriter = 2;
  constexpr size_t kBatchRecords = 25;
  constexpr size_t kSingleInserts = 20;

  // Flat far-mean ingest workload, pre-generated per writer batch.
  auto make_far = [](uint64_t seed, size_t count) {
    std::vector<std::string> names;
    std::vector<RealVec> values;
    for (size_t i = 0; i < count; ++i) {
      names.push_back("far_" + std::to_string(seed) + "_" +
                      std::to_string(i));
      values.emplace_back(kLength,
                          1e6 + static_cast<double>(seed * 64 + i));
    }
    return std::make_pair(std::move(names), std::move(values));
  };

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  // Readers: RunBatch must keep answering exactly the baseline.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < kRepsPerThread; ++rep) {
        Result<std::vector<BatchResult>> results = db_->RunBatch(batch, 2);
        if (!results.ok() || results->size() != batch.size()) {
          failed.store(true);
          return;
        }
        for (size_t i = 0; i < batch.size(); ++i) {
          if (!(*results)[i].status.ok() ||
              (*results)[i].matches.size() != baseline[i].matches.size()) {
            failed.store(true);
            return;
          }
          for (size_t m = 0; m < baseline[i].matches.size(); ++m) {
            if ((*results)[i].matches[m].id != baseline[i].matches[m].id ||
                (*results)[i].matches[m].distance !=
                    baseline[i].matches[m].distance) {
              failed.store(true);
              return;
            }
          }
        }
      }
    });
  }

  // Batch writers: concurrent InsertBatch calls sharing one ingest pool.
  for (size_t w = 0; w < kWriterThreads; ++w) {
    threads.emplace_back([&, w] {
      for (size_t b = 0; b < kBatchesPerWriter; ++b) {
        auto [names, values] =
            make_far(9000 + w * 100 + b, kBatchRecords);
        Result<std::vector<SeriesId>> ids =
            db_->InsertBatch(names, values, /*threads=*/2);
        if (!ids.ok() || ids->size() != kBatchRecords) {
          failed.store(true);
          return;
        }
      }
    });
  }

  // One single-Insert writer interleaving with the batches.
  threads.emplace_back([&] {
    auto [names, values] = make_far(9999, kSingleInserts);
    for (size_t i = 0; i < kSingleInserts; ++i) {
      if (!db_->Insert(names[i], values[i]).ok()) {
        failed.store(true);
        return;
      }
    }
  });

  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load()) << "a racing call diverged or failed";

  const uint64_t expected_size = kNumSeries +
                                 kWriterThreads * kBatchesPerWriter *
                                     kBatchRecords +
                                 kSingleInserts;
  EXPECT_EQ(db_->size(), expected_size);
  // Ingested entries land in the delta until a merge folds them in.
  DatabaseStats stats = db_->StatsSnapshot();
  EXPECT_EQ(stats.tree_entries + stats.delta_entries, expected_size);
  ASSERT_TRUE(db_->Reindex().ok());
  EXPECT_EQ(db_->index()->size(), expected_size);
  EXPECT_EQ(db_->StatsSnapshot().delta_entries, 0u);
  // Every ingested record is readable and the dense-id directory intact.
  for (uint64_t id = 0; id < expected_size; ++id) {
    ASSERT_TRUE(db_->relation()->Get(id).ok()) << "id " << id;
  }
  // Queries after the dust settles still answer the baseline.
  const std::vector<BatchResult> after = db_->RunBatch(batch, 2).value();
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(after[i].status.ok());
    ExpectSameMatches(after[i].matches, baseline[i].matches,
                      "post-ingest query " + std::to_string(i));
  }
}

}  // namespace
}  // namespace tsq
