// Copyright (c) 2026 The tsq Authors.
//
// Tests for the concurrent batch query engine: batch answers must be
// exactly the sequential Database answers, for every thread count.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/subsequence.h"
#include "engine/query_engine.h"
#include "engine/thread_pool.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using engine::BatchQuery;
using engine::BatchQueryKind;
using engine::BatchResult;
using engine::BatchStats;
using engine::QueryEngine;
using engine::QueryEngineOptions;
using engine::ThreadPool;

constexpr size_t kNumSeries = 160;
constexpr size_t kLength = 128;
constexpr uint64_t kSeed = 20260729;

const size_t kThreadCounts[] = {1, 2, 4, 8};

void ExpectSameMatches(const std::vector<Match>& actual,
                       const std::vector<Match>& expected,
                       const std::string& what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << what << " at " << i;
    EXPECT_EQ(actual[i].name, expected[i].name) << what << " at " << i;
    // Batch and sequential paths run the same arithmetic, so the
    // distances must agree bit-for-bit, not just approximately.
    EXPECT_EQ(actual[i].distance, expected[i].distance) << what << " at " << i;
  }
}

void ExpectSamePairs(const std::vector<JoinPair>& actual,
                     const std::vector<JoinPair>& expected,
                     const std::string& what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].first, expected[i].first) << what << " at " << i;
    EXPECT_EQ(actual[i].second, expected[i].second) << what << " at " << i;
    EXPECT_EQ(actual[i].distance, expected[i].distance) << what << " at " << i;
  }
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = workload::MakeRandomWalkDataset(kSeed, kNumSeries, kLength);
    DatabaseOptions options;
    options.directory = dir_.path();
    options.name = "engine";
    db_ = Database::Create(options).value();
    for (const TimeSeries& s : data_) {
      ASSERT_TRUE(db_->Insert(s.name(), s.values()).ok());
    }
    ASSERT_TRUE(db_->BuildIndex().ok());
  }

  /// A mixed, seeded workload: stored series and perturbed copies, plain
  /// and transformed specs, loose and tight thresholds.
  std::vector<BatchQuery> MakeBatch(size_t count) {
    Rng rng(kSeed + 1);
    QuerySpec smoothed;
    smoothed.transform =
        FeatureTransform::Spectral(transforms::MovingAverage(kLength, 8));
    std::vector<BatchQuery> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      BatchQuery q;
      RealVec values = data_[(i * 13) % kNumSeries].values();
      if (i % 3 == 0) {
        for (double& v : values) v += rng.Uniform(-1.0, 1.0);
      }
      q.query = std::move(values);
      if (i % 4 == 1) {
        q.kind = BatchQueryKind::kKnn;
        q.k = 1 + i % 7;
      } else {
        q.kind = BatchQueryKind::kRange;
        q.epsilon = (i % 2 == 0) ? 2.0 : 8.0;
      }
      if (i % 5 == 2) q.spec = smoothed;
      batch.push_back(std::move(q));
    }
    return batch;
  }

  /// The single-threaded Database answer for one batch entry.
  Result<std::vector<Match>> Sequential(const BatchQuery& q) {
    if (q.kind == BatchQueryKind::kKnn) {
      return db_->Knn(q.query, q.k, q.spec);
    }
    return db_->RangeQuery(q.query, q.epsilon, q.spec);
  }

  testing::TempDir dir_;
  std::vector<TimeSeries> data_;
  std::unique_ptr<Database> db_;
};

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
  // The pool stays usable after a Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1001);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(QueryStatsTest, MergeAccumulatesEveryField) {
  QueryStats a;
  a.candidates = 1;
  a.verified = 2;
  a.answers = 3;
  a.nodes_visited = 4;
  a.rect_transforms = 5;
  a.disk_reads = 6;
  a.records_scanned = 7;
  a.elapsed_ms = 1.5;
  QueryStats b = a;
  b.Merge(a);
  EXPECT_EQ(b.candidates, 2u);
  EXPECT_EQ(b.verified, 4u);
  EXPECT_EQ(b.answers, 6u);
  EXPECT_EQ(b.nodes_visited, 8u);
  EXPECT_EQ(b.rect_transforms, 10u);
  EXPECT_EQ(b.disk_reads, 12u);
  EXPECT_EQ(b.records_scanned, 14u);
  EXPECT_DOUBLE_EQ(b.elapsed_ms, 3.0);
}

TEST_F(EngineTest, BatchEqualsSequentialAtEveryThreadCount) {
  const std::vector<BatchQuery> batch = MakeBatch(32);

  // Ground truth from the single-query Database paths.
  std::vector<std::vector<Match>> expected;
  size_t nonempty = 0;
  for (const BatchQuery& q : batch) {
    expected.push_back(Sequential(q).value());
    if (!expected.back().empty()) ++nonempty;
  }
  ASSERT_GT(nonempty, batch.size() / 2) << "workload too selective";

  for (const size_t threads : kThreadCounts) {
    BatchStats stats;
    Result<std::vector<BatchResult>> results =
        db_->RunBatch(batch, threads, &stats);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const BatchResult& r = (*results)[i];
      ASSERT_TRUE(r.status.ok())
          << "threads=" << threads << " query=" << i << ": "
          << r.status.ToString();
      ExpectSameMatches(r.matches, expected[i],
                        "threads=" + std::to_string(threads) + " query=" +
                            std::to_string(i));
    }
    EXPECT_EQ(stats.aggregate.answers,
              [&expected] {
                size_t n = 0;
                for (const auto& e : expected) n += e.size();
                return n;
              }())
        << "threads=" << threads;
    EXPECT_GT(stats.aggregate.candidates, 0u);
  }
}

TEST_F(EngineTest, BatchDeterministicAcrossThreadCounts) {
  const std::vector<BatchQuery> batch = MakeBatch(48);
  const std::vector<BatchResult> baseline = db_->RunBatch(batch, 1).value();
  for (const size_t threads : {2u, 4u, 8u}) {
    const std::vector<BatchResult> run = db_->RunBatch(batch, threads).value();
    ASSERT_EQ(run.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(run[i].status.code(), baseline[i].status.code());
      ExpectSameMatches(run[i].matches, baseline[i].matches,
                        "threads=" + std::to_string(threads) + " query=" +
                            std::to_string(i));
    }
  }
}

TEST_F(EngineTest, ParallelSelfJoinEqualsTreeMatchAtEveryThreadCount) {
  const double eps = 6.0;
  const auto transform =
      FeatureTransform::Spectral(transforms::MovingAverage(kLength, 8));

  const std::vector<JoinPair> expected =
      db_->SelfJoin(eps, JoinMethod::kTreeMatch, transform).value();
  ASSERT_FALSE(expected.empty()) << "join threshold too selective";

  for (const size_t threads : kThreadCounts) {
    const std::vector<JoinPair> parallel =
        db_->ParallelSelfJoin(eps, transform, threads).value();
    ExpectSamePairs(parallel, expected,
                    "threads=" + std::to_string(threads));
    EXPECT_EQ(db_->last_stats().answers, expected.size());
  }

  // And without a transformation.
  const std::vector<JoinPair> plain_expected =
      db_->SelfJoin(eps, JoinMethod::kTreeMatch, std::nullopt).value();
  for (const size_t threads : kThreadCounts) {
    const std::vector<JoinPair> parallel =
        db_->ParallelSelfJoin(eps, std::nullopt, threads).value();
    ExpectSamePairs(parallel, plain_expected,
                    "plain threads=" + std::to_string(threads));
  }
}

TEST_F(EngineTest, ParallelSelfJoinDeterministicAcrossWorkersAndRuns) {
  // The parallelized descent must reproduce one canonical answer — same
  // pairs, same order — at every worker count and on every run (per-seed
  // buffers merged in seed order leave no scheduling dependence).
  const double eps = 6.0;
  const auto transform =
      FeatureTransform::Spectral(transforms::MovingAverage(kLength, 8));

  const std::vector<JoinPair> baseline =
      db_->ParallelSelfJoin(eps, transform, 1).value();
  ASSERT_FALSE(baseline.empty()) << "join threshold too selective";

  for (const size_t threads : kThreadCounts) {
    for (int run = 0; run < 3; ++run) {
      const std::vector<JoinPair> pairs =
          db_->ParallelSelfJoin(eps, transform, threads).value();
      ExpectSamePairs(pairs, baseline,
                      "threads=" + std::to_string(threads) + " run=" +
                          std::to_string(run));
    }
  }

  // Cross-validate the answer set against the paper's method-d join
  // (index-nested-loop), which emits the same ordered pairs in a
  // different sequence: canonical sort must make them identical.
  std::vector<JoinPair> canonical = baseline;
  std::vector<JoinPair> method_d =
      db_->SelfJoin(eps, JoinMethod::kIndexTransformed, transform).value();
  const auto canonical_order = [](const JoinPair& a, const JoinPair& b) {
    return a.first < b.first ||
           (a.first == b.first && a.second < b.second);
  };
  std::sort(canonical.begin(), canonical.end(), canonical_order);
  std::sort(method_d.begin(), method_d.end(), canonical_order);
  ExpectSamePairs(canonical, method_d, "canonical vs method d");
}

TEST_F(EngineTest, BatchTraversalStatsAreExactPerQuery) {
  // v2 exact-stats contract: with thread-local counters, the sum of the
  // per-query traversal deltas must equal the shared engine counters'
  // delta exactly — at any thread count — and the aggregate is that sum.
  const std::vector<BatchQuery> batch = MakeBatch(24);
  for (const size_t threads : kThreadCounts) {
    db_->index()->ResetStats();
    BatchStats stats;
    const std::vector<BatchResult> results =
        db_->RunBatch(batch, threads, &stats).value();

    uint64_t nodes = 0, transforms = 0, reads = 0;
    for (const BatchResult& r : results) {
      ASSERT_TRUE(r.status.ok());
      nodes += r.stats.nodes_visited;
      transforms += r.stats.rect_transforms;
      reads += r.stats.disk_reads;
    }
    EXPECT_GT(nodes, 0u) << "threads=" << threads;
    EXPECT_EQ(nodes, db_->index()->tree()->stats().nodes_visited)
        << "threads=" << threads;
    EXPECT_EQ(transforms, db_->index()->tree()->stats().rect_transforms)
        << "threads=" << threads;
    EXPECT_EQ(reads, db_->index()->pool()->stats().disk_reads)
        << "threads=" << threads;
    EXPECT_EQ(stats.aggregate.nodes_visited, nodes) << "threads=" << threads;
    EXPECT_EQ(stats.aggregate.rect_transforms, transforms)
        << "threads=" << threads;
    EXPECT_EQ(stats.aggregate.disk_reads, reads) << "threads=" << threads;
  }
}

TEST_F(EngineTest, SubsequenceBatchEqualsDirectSearch) {
  SubsequenceIndexOptions options;
  options.window = 32;
  options.path = dir_.file("engine_subseq.pages");
  auto sub_index = SubsequenceIndex::Create(options).value();
  for (size_t i = 0; i < data_.size(); ++i) {
    ASSERT_TRUE(sub_index->AddSeries(i, data_[i].values()).ok());
  }

  const SeriesFetcher fetch = [this](SeriesId id) -> Result<RealVec> {
    TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, db_->Get(id));
    return std::move(rec.values);
  };

  std::vector<BatchQuery> batch;
  std::vector<std::vector<SubsequenceMatch>> expected;
  for (size_t i = 0; i < 12; ++i) {
    BatchQuery q;
    q.kind = BatchQueryKind::kSubsequence;
    const RealVec& source = data_[(i * 29) % kNumSeries].values();
    const size_t offset = (i * 7) % (kLength - options.window);
    q.query.assign(source.begin() + offset,
                   source.begin() + offset + options.window);
    q.epsilon = 1.5;
    batch.push_back(q);

    expected.emplace_back();
    ASSERT_TRUE(sub_index
                    ->RangeSearch(batch.back().query, batch.back().epsilon,
                                  fetch, &expected.back(), nullptr)
                    .ok());
  }

  for (const size_t threads : kThreadCounts) {
    QueryEngineOptions opts;
    opts.threads = threads;
    QueryEngine engine(db_->index(), db_->relation(), sub_index.get(), opts);
    const std::vector<BatchResult> results = engine.RunBatch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
      const auto& actual = results[i].subsequence_matches;
      ASSERT_EQ(actual.size(), expected[i].size())
          << "threads=" << threads << " query=" << i;
      for (size_t m = 0; m < actual.size(); ++m) {
        EXPECT_EQ(actual[m].id, expected[i][m].id);
        EXPECT_EQ(actual[m].offset, expected[i][m].offset);
        EXPECT_EQ(actual[m].distance, expected[i][m].distance);
      }
    }
  }
}

TEST_F(EngineTest, PerQueryErrorsDoNotPoisonTheBatch) {
  std::vector<BatchQuery> batch = MakeBatch(6);
  batch[2].query.resize(kLength / 2);  // wrong length
  batch[4].epsilon = -1.0;             // negative threshold

  const std::vector<BatchResult> results = db_->RunBatch(batch, 4).value();
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_TRUE(results[2].status.IsInvalidArgument());
  EXPECT_TRUE(results[4].status.IsInvalidArgument());
  for (const size_t i : {0u, 1u, 3u, 5u}) {
    EXPECT_TRUE(results[i].status.ok()) << "query " << i;
    ExpectSameMatches(results[i].matches, Sequential(batch[i]).value(),
                      "query " + std::to_string(i));
  }
}

TEST_F(EngineTest, RunBatchRequiresIndex) {
  testing::TempDir dir;
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "noindex";
  auto db = Database::Create(options).value();
  ASSERT_TRUE(db->Insert("a", data_[0].values()).ok());
  Result<std::vector<BatchResult>> r = db->RunBatch(MakeBatch(2), 2);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST_F(EngineTest, EngineWithoutKIndexFailsWholeSeriesQueriesOnly) {
  QueryEngine engine(nullptr, db_->relation());
  std::vector<BatchQuery> batch = MakeBatch(3);
  const std::vector<BatchResult> results = engine.RunBatch(batch);
  for (const BatchResult& r : results) {
    EXPECT_TRUE(r.status.IsFailedPrecondition());
  }
}

}  // namespace
}  // namespace tsq
