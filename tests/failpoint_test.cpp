// Copyright (c) 2026 The tsq Authors.
//
// Tests for the failpoint registry (spec grammar, skip/count semantics,
// callbacks, the TSQ_FAILPOINTS environment string) and for the
// durability/degradation contract it exists to exercise: an injected
// ENOSPC or short write on any append/merge path must surface an
// errno-bearing IOError, flip the database into read-only degraded mode
// while queries keep serving the published snapshot, and Repair() must
// lift the poison once the fault is cleared.

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/database.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using testing::TempDir;

constexpr size_t kLength = 16;

class FailpointTest : public ::testing::Test {
 protected:
  // Leaving an armed site behind would fail whichever test runs next.
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailpointTest, DisarmedSiteIsFreeAndFiresNothing) {
  failpoint::Site* site = failpoint::Register("fp_unit_disarmed");
  EXPECT_FALSE(site->armed());
  const failpoint::Decision d = failpoint::Check(site);
  EXPECT_FALSE(d.fire());
  EXPECT_EQ(d.kind, failpoint::ActionKind::kOff);
}

TEST_F(FailpointTest, SpecGrammarRejectsMalformedInput) {
  EXPECT_TRUE(failpoint::Configure("fp_unit_gram", "explode").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::Configure("fp_unit_gram", "error:skip").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::Configure("fp_unit_gram", "error:skip=x").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::Configure("fp_unit_gram", "error:warp=1").IsInvalidArgument());
  // A rejected spec must not arm the site.
  EXPECT_FALSE(failpoint::Register("fp_unit_gram")->armed());
}

TEST_F(FailpointTest, ErrorActionCarriesConfiguredErrno) {
  ASSERT_TRUE(failpoint::Configure("fp_unit_err", "error:errno=28").ok());
  failpoint::Site* site = failpoint::Register("fp_unit_err");
  ASSERT_TRUE(site->armed());
  const failpoint::Decision d = failpoint::Check(site);
  EXPECT_TRUE(d.fire());
  EXPECT_EQ(d.kind, failpoint::ActionKind::kError);
  EXPECT_EQ(d.error_errno, ENOSPC);
}

TEST_F(FailpointTest, EnospcShortAndOffActions) {
  ASSERT_TRUE(failpoint::Configure("fp_unit_acts", "enospc").ok());
  failpoint::Site* site = failpoint::Register("fp_unit_acts");
  EXPECT_EQ(failpoint::Check(site).error_errno, ENOSPC);

  ASSERT_TRUE(failpoint::Configure("fp_unit_acts", "short:bytes=5").ok());
  const failpoint::Decision d = failpoint::Check(site);
  EXPECT_EQ(d.kind, failpoint::ActionKind::kShortWrite);
  EXPECT_EQ(d.bytes, 5u);
  EXPECT_EQ(d.error_errno, EIO);  // default errno

  ASSERT_TRUE(failpoint::Configure("fp_unit_acts", "off").ok());
  EXPECT_FALSE(site->armed());
}

TEST_F(FailpointTest, SkipAndCountConsumeTraversals) {
  ASSERT_TRUE(
      failpoint::Configure("fp_unit_skip", "error:skip=2,count=2").ok());
  failpoint::Site* site = failpoint::Register("fp_unit_skip");
  EXPECT_FALSE(failpoint::Check(site).fire());  // skip 1
  EXPECT_FALSE(failpoint::Check(site).fire());  // skip 2
  EXPECT_TRUE(failpoint::Check(site).fire());   // shot 1
  EXPECT_TRUE(failpoint::Check(site).fire());   // shot 2, disarms
  EXPECT_FALSE(site->armed());
  EXPECT_FALSE(failpoint::Check(site).fire());
  // hits() counts armed traversals only — the disarmed Check above never
  // reached Evaluate.
  EXPECT_EQ(site->hits(), 4u);
  EXPECT_EQ(failpoint::HitCount("fp_unit_skip"), 4u);
}

TEST_F(FailpointTest, CountZeroNeverFires) {
  ASSERT_TRUE(failpoint::Configure("fp_unit_zero", "error:count=0").ok());
  EXPECT_FALSE(failpoint::Register("fp_unit_zero")->armed());
}

TEST_F(FailpointTest, CallbackArmsSiteAndReceivesArg) {
  uint64_t seen = 0;
  failpoint::SetCallback("fp_unit_cb",
                         [&seen](uint64_t arg) { seen = arg; });
  failpoint::Site* site = failpoint::Register("fp_unit_cb");
  ASSERT_TRUE(site->armed());
  EXPECT_FALSE(failpoint::Check(site, 42).fire());  // callback only, no fault
  EXPECT_EQ(seen, 42u);
  failpoint::SetCallback("fp_unit_cb", nullptr);
  EXPECT_FALSE(site->armed());
}

TEST_F(FailpointTest, ArmedSitesListsAndClearAllDisarms) {
  ASSERT_TRUE(failpoint::Configure("fp_unit_lista", "error").ok());
  ASSERT_TRUE(failpoint::Configure("fp_unit_listb", "enospc").ok());
  std::vector<std::string> armed = failpoint::ArmedSites();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "fp_unit_lista"),
            armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "fp_unit_listb"),
            armed.end());
  failpoint::ClearAll();
  EXPECT_FALSE(failpoint::Register("fp_unit_lista")->armed());
  EXPECT_FALSE(failpoint::Register("fp_unit_listb")->armed());
}

// The environment string is parsed once at the first Register of a
// process, so it cannot be tested in this (long-registered) process:
// re-exec this binary filtered to the probe test with TSQ_FAILPOINTS
// set, and let the probe verify the spec was applied.
TEST_F(FailpointTest, EnvSpecProbe) {
  if (const char* env = std::getenv("TSQ_FAILPOINTS")) {
    failpoint::Site* site = failpoint::Register("fp_env_probe");
    ASSERT_TRUE(site->armed()) << "TSQ_FAILPOINTS=" << env << " not applied";
    const failpoint::Decision d = failpoint::Check(site);
    EXPECT_EQ(d.kind, failpoint::ActionKind::kError);
    EXPECT_EQ(d.error_errno, ENOSPC);
    EXPECT_TRUE(failpoint::Check(site).fire());
    EXPECT_FALSE(site->armed());  // count=2 exhausted
    return;
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("TSQ_FAILPOINTS", "fp_env_probe=error:errno=28,count=2;;bad", 1);
    ::execl("/proc/self/exe", "failpoint_test",
            "--gtest_filter=FailpointTest.EnvSpecProbe",
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

// ---------------------------------------------------------------------------
// Database-level fault injection: degrade, keep serving, repair.
// ---------------------------------------------------------------------------

/// Creates a database with `count` indexed series in `dir`.
Result<std::unique_ptr<Database>> MakeIndexedDb(
    const std::string& dir, size_t count,
    Durability durability = Durability::kNone) {
  DatabaseOptions options;
  options.directory = dir;
  options.name = "fpdb";
  options.relation_segments = 2;
  options.durability = durability;
  TSQ_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Database::Create(options));
  const auto data = workload::MakeRandomWalkDataset(20260808, count, kLength);
  std::vector<std::string> names;
  std::vector<RealVec> values;
  for (const TimeSeries& s : data) {
    names.push_back(s.name());
    values.push_back(s.values());
  }
  TSQ_RETURN_IF_ERROR(db->InsertBatch(names, values).status());
  TSQ_RETURN_IF_ERROR(db->BuildIndex());
  return db;
}

RealVec ProbeQuery() { return RealVec(kLength, 0.0); }

TEST_F(FailpointTest, EnospcOnAppendDegradesServesAndRepairs) {
  TempDir dir;
  auto db = MakeIndexedDb(dir.path(), 32);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const size_t before = (*db)->size();
  auto healthy = (*db)->RangeQuery(ProbeQuery(), 50.0);
  ASSERT_TRUE(healthy.ok());

  ASSERT_TRUE(failpoint::Configure("relation_append", "enospc").ok());
  auto id = (*db)->Insert("victim", RealVec(kLength, 1.0));
  ASSERT_FALSE(id.ok());
  EXPECT_TRUE(id.status().IsIOError()) << id.status().ToString();
  // The error names the failing segment file and carries the errno text.
  EXPECT_NE(id.status().message().find("append failed in"), std::string::npos)
      << id.status().ToString();
  EXPECT_NE(id.status().message().find(std::strerror(ENOSPC)),
            std::string::npos)
      << id.status().ToString();

  // Degraded: writes bounce with kReadOnly, reads keep serving the
  // published snapshot, stats say why.
  EXPECT_TRUE((*db)->degraded());
  auto rejected = (*db)->Insert("rejected", RealVec(kLength, 2.0));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsReadOnly()) << rejected.status().ToString();
  auto while_degraded = (*db)->RangeQuery(ProbeQuery(), 50.0);
  ASSERT_TRUE(while_degraded.ok()) << while_degraded.status().ToString();
  EXPECT_EQ(while_degraded->size(), healthy->size());
  const DatabaseStats stats = (*db)->StatsSnapshot();
  EXPECT_TRUE(stats.degraded);
  EXPECT_GE(stats.write_faults, 1u);
  EXPECT_EQ(stats.repairs_completed, 0u);

  // Repair clears the poison, but while the fault persists the very
  // next write faults again — degradation is re-entrant, not one-shot.
  ASSERT_TRUE((*db)->Repair().ok());
  EXPECT_FALSE((*db)->degraded());
  auto still = (*db)->Insert("still_failing", RealVec(kLength, 2.5));
  ASSERT_FALSE(still.ok());
  EXPECT_TRUE(still.status().IsIOError()) << still.status().ToString();
  EXPECT_TRUE((*db)->degraded());

  // Once the "disk" recovers, repair sticks and writes resume.
  failpoint::ClearAll();
  ASSERT_TRUE((*db)->Repair().ok());
  EXPECT_FALSE((*db)->degraded());
  EXPECT_EQ((*db)->size(), before);  // the failed appends left no hole
  auto resumed = (*db)->Insert("resumed", RealVec(kLength, 3.0));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ((*db)->StatsSnapshot().repairs_completed, 2u);
  EXPECT_GE((*db)->StatsSnapshot().write_faults, 2u);
  // The repaired snapshot still answers (and now sees the new series).
  auto after = (*db)->RangeQuery(ProbeQuery(), 50.0);
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after->size(), healthy->size());
}

TEST_F(FailpointTest, ShortWriteOnAppendTruncatesAndRepairs) {
  TempDir dir;
  auto db = MakeIndexedDb(dir.path(), 16);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const size_t before = (*db)->size();

  // Land a 7-byte prefix of the record, then fail — the torn tail must
  // be truncated away so the segment stays parseable.
  ASSERT_TRUE(failpoint::Configure("relation_append", "short:bytes=7").ok());
  auto id = (*db)->Insert("torn", RealVec(kLength, 1.0));
  ASSERT_FALSE(id.ok());
  EXPECT_TRUE(id.status().IsIOError());
  EXPECT_NE(id.status().message().find(std::strerror(EIO)), std::string::npos)
      << id.status().ToString();
  EXPECT_TRUE((*db)->degraded());

  failpoint::ClearAll();
  ASSERT_TRUE((*db)->Repair().ok());
  auto resumed = (*db)->Insert("resumed", RealVec(kLength, 2.0));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(*resumed, before);  // dense ids: no hole from the failure
  auto rec = (*db)->Get(*resumed);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->name, "resumed");
}

TEST_F(FailpointTest, BatchAppendFaultDegradesAllWriters) {
  TempDir dir;
  auto db = MakeIndexedDb(dir.path(), 8);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ASSERT_TRUE(failpoint::Configure("relation_append", "enospc:skip=3").ok());
  const auto data = workload::MakeRandomWalkDataset(20260809, 16, kLength);
  std::vector<std::string> names;
  std::vector<RealVec> values;
  for (const TimeSeries& s : data) {
    names.push_back(s.name() + "_b");
    values.push_back(s.values());
  }
  auto ids = (*db)->InsertBatch(names, values, /*threads=*/4);
  ASSERT_FALSE(ids.ok());
  EXPECT_TRUE(ids.status().IsIOError()) << ids.status().ToString();
  EXPECT_TRUE((*db)->degraded());

  failpoint::ClearAll();
  ASSERT_TRUE((*db)->Repair().ok());
  auto retry = (*db)->InsertBatch(names, values, /*threads=*/4);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(FailpointTest, SyncFaultUnderPerBatchDurabilityDegrades) {
  TempDir dir;
  auto db = MakeIndexedDb(dir.path(), 8, Durability::kPerBatch);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // The append itself succeeds; the group-commit fdatasync fails, so the
  // batch must NOT be acknowledged and the database must degrade.
  ASSERT_TRUE(failpoint::Configure("relation_sync", "error").ok());
  auto id = (*db)->Insert("unsynced", RealVec(kLength, 1.0));
  ASSERT_FALSE(id.ok());
  EXPECT_TRUE(id.status().IsIOError()) << id.status().ToString();
  EXPECT_NE(id.status().message().find("fdatasync failed for"),
            std::string::npos)
      << id.status().ToString();
  EXPECT_TRUE((*db)->degraded());

  failpoint::ClearAll();
  ASSERT_TRUE((*db)->Repair().ok());
  auto resumed = (*db)->Insert("resumed", RealVec(kLength, 2.0));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
}

TEST_F(FailpointTest, FlushFaultDegradesAtOnFlushDurability) {
  TempDir dir;
  auto db = MakeIndexedDb(dir.path(), 8, Durability::kOnFlush);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ASSERT_TRUE(failpoint::Configure("relation_sync", "enospc").ok());
  Status flushed = (*db)->Flush();
  ASSERT_FALSE(flushed.ok());
  EXPECT_TRUE(flushed.IsIOError()) << flushed.ToString();
  EXPECT_TRUE((*db)->degraded());

  failpoint::ClearAll();
  ASSERT_TRUE((*db)->Repair().ok());
  EXPECT_TRUE((*db)->Flush().ok());
}

TEST_F(FailpointTest, MergeWriteFaultDegradesAndRepairRestoresQueries) {
  TempDir dir;
  auto db = MakeIndexedDb(dir.path(), 16);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Grow the delta so Reindex has something to merge.
  for (int i = 0; i < 4; ++i) {
    auto id = (*db)->Insert("delta" + std::to_string(i),
                            RealVec(kLength, 1.0 + i));
    ASSERT_TRUE(id.ok());
  }
  auto healthy = (*db)->RangeQuery(ProbeQuery(), 50.0);
  ASSERT_TRUE(healthy.ok());

  for (const char* site :
       {"reindex_before_flush", "reindex_before_rename"}) {
    SCOPED_TRACE(site);
    ASSERT_TRUE(failpoint::Configure(site, "enospc").ok());
    auto epoch = (*db)->Reindex();
    ASSERT_FALSE(epoch.ok());
    EXPECT_TRUE(epoch.status().IsIOError()) << epoch.status().ToString();
    EXPECT_NE(epoch.status().message().find(std::strerror(ENOSPC)),
              std::string::npos)
        << epoch.status().ToString();
    EXPECT_TRUE((*db)->degraded());

    // Queries still serve the last published epoch while degraded.
    auto while_degraded = (*db)->RangeQuery(ProbeQuery(), 50.0);
    ASSERT_TRUE(while_degraded.ok());
    EXPECT_EQ(while_degraded->size(), healthy->size());

    failpoint::ClearAll();
    ASSERT_TRUE((*db)->Repair().ok());
    EXPECT_FALSE((*db)->degraded());
  }

  // With the fault gone the merge goes through and answers are intact.
  auto epoch = (*db)->Reindex();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  auto after = (*db)->RangeQuery(ProbeQuery(), 50.0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), healthy->size());
}

TEST_F(FailpointTest, RepairOnHealthyDatabaseIsANoOp) {
  TempDir dir;
  auto db = MakeIndexedDb(dir.path(), 8);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Repair().ok());
  EXPECT_EQ((*db)->StatsSnapshot().repairs_completed, 0u);
}

}  // namespace
}  // namespace tsq
