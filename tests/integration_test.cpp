// Copyright (c) 2026 The tsq Authors.
//
// Cross-module integration tests: the no-false-dismissal guarantee
// (Lemma 1) exercised end to end on a realistic data set with many
// transformations and thresholds; the Figure 8/9 premise (identity
// transform == plain search, identical disk accesses); candidate-set
// quality; and stability of the whole stack across index layouts.

#include <algorithm>
#include <cmath>
#include <set>

#include "core/database.h"
#include "gtest/gtest.h"
#include "series/distance.h"
#include "series/moving_average.h"
#include "series/normal_form.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

using testing::TempDir;

std::set<SeriesId> Ids(const std::vector<Match>& ms) {
  std::set<SeriesId> out;
  for (const Match& m : ms) out.insert(m.id);
  return out;
}

class IntegrationTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> MakeStockDb(size_t count, uint64_t seed,
                                        FeatureLayout layout =
                                            FeatureLayout::Paper()) {
    DatabaseOptions options;
    options.directory = dir_.path();
    options.name = "db" + std::to_string(counter_++);
    options.layout = layout;
    auto db = Database::Create(options);
    EXPECT_TRUE(db.ok());
    workload::StockMarketOptions market;
    market.num_series = count;
    auto series = workload::MakeStockMarket(seed, market);
    for (const TimeSeries& s : series) {
      EXPECT_TRUE((*db)->Insert(s.name(), s.values()).ok());
    }
    EXPECT_TRUE((*db)->BuildIndex().ok());
    return std::move(*db);
  }

  TempDir dir_;
  int counter_ = 0;
};

// ---------------------------------------------------------------------------
// Lemma 1, end to end, across transformations and thresholds
// ---------------------------------------------------------------------------

struct LemmaCase {
  const char* name;
  double eps;
};

class Lemma1Test : public IntegrationTest,
                   public ::testing::WithParamInterface<double> {};

TEST_P(Lemma1Test, NoFalseDismissalsAcrossTransforms) {
  const double eps = GetParam();
  auto db = MakeStockDb(400, 20260610);
  const size_t n = 128;

  std::vector<std::pair<std::string, QuerySpec>> specs;
  specs.emplace_back("identity", QuerySpec{});
  QuerySpec ma;
  ma.transform = FeatureTransform::Spectral(transforms::MovingAverage(n, 20));
  specs.emplace_back("mavg20", ma);
  QuerySpec ma3;
  ma3.transform =
      FeatureTransform::Spectral(transforms::SuccessiveMovingAverage(n, 20, 3));
  specs.emplace_back("mavg20^3", ma3);
  QuerySpec rev;
  rev.transform = FeatureTransform::Spectral(transforms::Reverse(n));
  rev.mode = TransformMode::kDataOnly;
  specs.emplace_back("reverse", rev);
  QuerySpec wma;
  wma.transform = FeatureTransform::Spectral(
      transforms::WeightedMovingAverage(n, {0.4, 0.3, 0.2, 0.1}));
  specs.emplace_back("wmavg4", wma);

  Rng rng(5);
  for (const auto& [name, spec] : specs) {
    for (int q = 0; q < 3; ++q) {
      auto probe = db->Get(static_cast<SeriesId>(rng.UniformInt(0, 399)));
      ASSERT_TRUE(probe.ok());
      auto via_index = db->RangeQuery(probe->values, eps, spec);
      ASSERT_TRUE(via_index.ok()) << name << ": "
                                  << via_index.status().ToString();
      auto via_scan = db->ScanRangeQuery(probe->values, eps, spec);
      ASSERT_TRUE(via_scan.ok());
      EXPECT_EQ(Ids(*via_index), Ids(*via_scan))
          << "transform=" << name << " eps=" << eps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, Lemma1Test,
                         ::testing::Values(0.05, 0.5, 2.0, 8.0, 16.0));

// ---------------------------------------------------------------------------
// Figure 8/9 premise
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, IdentityTransformSameAnswersAndSameDiskAccesses) {
  auto db = MakeStockDb(500, 77);
  const size_t n = 128;
  QuerySpec identity_spec;
  identity_spec.transform =
      FeatureTransform::Spectral(transforms::Identity(n));

  Rng rng(6);
  for (int q = 0; q < 5; ++q) {
    auto probe = db->Get(static_cast<SeriesId>(rng.UniformInt(0, 499)));
    ASSERT_TRUE(probe.ok());

    auto plain = db->RangeQuery(probe->values, 4.0);
    ASSERT_TRUE(plain.ok());
    const QueryStats plain_stats = db->last_stats();

    auto transformed = db->RangeQuery(probe->values, 4.0, identity_spec);
    ASSERT_TRUE(transformed.ok());
    const QueryStats transformed_stats = db->last_stats();

    // Same answers, same node accesses; the transformed path does strictly
    // more CPU work (rect transformations).
    EXPECT_EQ(Ids(*plain), Ids(*transformed));
    EXPECT_EQ(plain_stats.nodes_visited, transformed_stats.nodes_visited);
    EXPECT_EQ(plain_stats.rect_transforms, 0u);
    EXPECT_GT(transformed_stats.rect_transforms, 0u);
  }
}

// ---------------------------------------------------------------------------
// Candidate quality (the filter works)
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, IndexCandidatesAreFewComparedToRelation) {
  auto db = MakeStockDb(600, 99);
  Rng rng(7);
  uint64_t total_candidates = 0;
  uint64_t queries = 0;
  for (int q = 0; q < 10; ++q) {
    auto probe = db->Get(static_cast<SeriesId>(rng.UniformInt(0, 599)));
    ASSERT_TRUE(probe.ok());
    auto res = db->RangeQuery(probe->values, 1.0);
    ASSERT_TRUE(res.ok());
    total_candidates += db->last_stats().candidates;
    ++queries;
    // Answers never exceed candidates.
    EXPECT_LE(db->last_stats().answers, db->last_stats().candidates);
  }
  // Selective queries should touch far fewer records than the relation
  // size on average (the k-index filter property).
  EXPECT_LT(total_candidates / queries, 600u / 4);
}

TEST_F(IntegrationTest, EveryAnswerVerifiesAgainstTimeDomain) {
  // Matches' distances are frequency-domain; Parseval says the time-domain
  // distance between the transformed normal forms is identical.
  auto db = MakeStockDb(300, 111);
  QuerySpec spec;
  spec.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
  auto probe = db->Get(3);
  ASSERT_TRUE(probe.ok());
  auto res = db->RangeQuery(probe->values, 3.0, spec);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->empty());

  const RealVec qnf = ToNormalForm(probe->values).normalized;
  const RealVec qsm = CircularMovingAverage(qnf, 20);
  for (const Match& m : *res) {
    auto rec = db->Get(m.id);
    ASSERT_TRUE(rec.ok());
    const RealVec rnf = ToNormalForm(rec->values).normalized;
    const RealVec rsm = CircularMovingAverage(rnf, 20);
    EXPECT_NEAR(EuclideanDistance(rsm, qsm), m.distance, 1e-6)
        << "id " << m.id;
  }
}

// ---------------------------------------------------------------------------
// Layout ablations hold up
// ---------------------------------------------------------------------------

class LayoutAblationTest : public IntegrationTest,
                           public ::testing::WithParamInterface<size_t> {};

TEST_P(LayoutAblationTest, MoreCoefficientsNeverHurtCorrectness) {
  const size_t k = GetParam();
  FeatureLayout layout = FeatureLayout::Paper();
  layout.num_coefficients = k;
  auto db = MakeStockDb(250, 131 + k, layout);
  Rng rng(8);
  for (double eps : {0.5, 4.0}) {
    auto probe = db->Get(static_cast<SeriesId>(rng.UniformInt(0, 249)));
    ASSERT_TRUE(probe.ok());
    auto via_index = db->RangeQuery(probe->values, eps);
    ASSERT_TRUE(via_index.ok());
    auto via_scan = db->ScanRangeQuery(probe->values, eps);
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(Ids(*via_index), Ids(*via_scan)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(CoefficientCounts, LayoutAblationTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST_F(IntegrationTest, MoreCoefficientsGiveFewerOrEqualCandidates) {
  // The classic k tradeoff: a longer prefix filters better.
  FeatureLayout small = FeatureLayout::Paper();
  small.num_coefficients = 1;
  FeatureLayout large = FeatureLayout::Paper();
  large.num_coefficients = 6;
  auto db_small = MakeStockDb(400, 171, small);
  auto db_large = MakeStockDb(400, 171, large);
  Rng rng(9);
  uint64_t cand_small = 0;
  uint64_t cand_large = 0;
  for (int q = 0; q < 8; ++q) {
    const SeriesId id = static_cast<SeriesId>(rng.UniformInt(0, 399));
    auto probe = db_small->Get(id);
    ASSERT_TRUE(probe.ok());
    ASSERT_TRUE(db_small->RangeQuery(probe->values, 1.5).ok());
    cand_small += db_small->last_stats().candidates;
    ASSERT_TRUE(db_large->RangeQuery(probe->values, 1.5).ok());
    cand_large += db_large->last_stats().candidates;
  }
  EXPECT_LE(cand_large, cand_small);
}

// ---------------------------------------------------------------------------
// Scale: a thousand series, deep tree, everything still exact
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, ThousandSeriesEndToEnd) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "big";
  auto dbr = Database::Create(options);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(*dbr);
  auto data = workload::MakeRandomWalkDataset(2026, 1000, 128);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());
  EXPECT_EQ(db->size(), 1000u);
  EXPECT_GE(db->index()->tree()->height(), 2u);

  auto check = db->index()->tree()->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;

  QuerySpec spec;
  spec.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
  Rng rng(10);
  for (int q = 0; q < 3; ++q) {
    const RealVec query = workload::RandomWalkSeries(&rng, 128, {});
    auto via_index = db->RangeQuery(query, 4.0, spec);
    ASSERT_TRUE(via_index.ok());
    auto via_scan = db->ScanRangeQuery(query, 4.0, spec);
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(Ids(*via_index), Ids(*via_scan));
  }
}

}  // namespace
}  // namespace tsq

namespace tsq {
namespace {

// ---------------------------------------------------------------------------
// Persistence: Database::Open round trip
// ---------------------------------------------------------------------------

class PersistenceTest : public ::testing::Test {
 protected:
  testing::TempDir dir_;
};

TEST_F(PersistenceTest, ReopenServesIdenticalAnswers) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "persist";
  auto data = workload::MakeRandomWalkDataset(606, 300, 64);
  const RealVec query = data[13].values();

  std::vector<Match> before;
  {
    auto db = Database::Create(options).value();
    for (const TimeSeries& s : data) {
      ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
    }
    ASSERT_TRUE(db->BuildIndex().ok());
    before = db->RangeQuery(query, 4.0).value();
    ASSERT_TRUE(db->Flush().ok());
  }

  auto reopened = Database::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 300u);
  EXPECT_EQ((*reopened)->series_length(), 64u);
  ASSERT_TRUE((*reopened)->index_built());

  auto after = (*reopened)->RangeQuery(query, 4.0).value();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].id, before[i].id);
    EXPECT_EQ(after[i].name, before[i].name);
    EXPECT_NEAR(after[i].distance, before[i].distance, 1e-12);
  }

  // The reopened tree passes a structural audit.
  auto check = (*reopened)->index()->tree()->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok) << check->message;
}

TEST_F(PersistenceTest, ReopenWithoutIndex) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "noindex";
  {
    auto db = Database::Create(options).value();
    ASSERT_TRUE(db->Insert("only", RealVec(32, 5.0)).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  auto reopened = Database::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->index_built());
  // Scans still work; index queries report the missing index.
  EXPECT_TRUE((*reopened)->ScanRangeQuery(RealVec(32, 5.0), 1.0).ok());
  EXPECT_TRUE((*reopened)
                  ->RangeQuery(RealVec(32, 5.0), 1.0)
                  .status()
                  .IsFailedPrecondition());
  // Inserts continue from the persisted state, then an index can be built.
  ASSERT_TRUE((*reopened)->Insert("more", RealVec(32, 6.0)).ok());
  ASSERT_TRUE((*reopened)->BuildIndex().ok());
  EXPECT_EQ((*reopened)->RangeQuery(RealVec(32, 6.0), 0.1).value().size(), 2u);
}

TEST_F(PersistenceTest, OpenMissingDatabaseFails) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "nothere";
  EXPECT_TRUE(Database::Open(options).status().IsIOError());
}

TEST_F(PersistenceTest, OpenRebuildsRelationTailIntoDelta) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "mismatch";
  RealVec ramp(32);
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = double(i);
  {
    auto db = Database::Create(options).value();
    ASSERT_TRUE(db->Insert("a", RealVec(32, 1.0)).ok());
    ASSERT_TRUE(db->BuildIndex().ok());
    // This lands in the in-memory delta: the on-disk tree still covers
    // one series after the flush, while the relation holds two.
    ASSERT_TRUE(db->Insert("tail", ramp).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  // v4 contract: a relation that ran ahead of the on-disk index is the
  // crash-before-merge shape, not corruption — Open rebuilds the tail
  // into the delta, and the delta answers queries immediately.
  auto reopened = Database::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 2u);
  EXPECT_EQ((*reopened)->index()->size(), 1u);
  EXPECT_EQ((*reopened)->StatsSnapshot().delta_entries, 1u);
  auto hit = (*reopened)->RangeQuery(ramp, 0.001);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].id, 1u);
  EXPECT_EQ((*hit)[0].distance, 0.0);
}

}  // namespace
}  // namespace tsq
