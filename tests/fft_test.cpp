// Copyright (c) 2026 The tsq Authors.
//
// Tests for the DFT engine: the fast kernels against the O(n^2) reference,
// the paper's unitary convention (Eq. 1/2), Parseval (Eq. 7), distance
// preservation (Eq. 8), circular convolution (Eq. 4/6) and the energy
// concentration property that justifies the k-index.

#include <cmath>

#include "common/random.h"
#include "dft/dft.h"
#include "dft/fft.h"
#include "gtest/gtest.h"
#include "series/distance.h"
#include "test_util.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using testing::ExpectComplexNear;
using testing::ExpectRealNear;
using testing::RandomComplexVec;
using testing::RandomRealVec;

TEST(FftUtilTest, IsPowerOfTwo) {
  EXPECT_TRUE(fft::IsPowerOfTwo(1));
  EXPECT_TRUE(fft::IsPowerOfTwo(2));
  EXPECT_TRUE(fft::IsPowerOfTwo(1024));
  EXPECT_FALSE(fft::IsPowerOfTwo(0));
  EXPECT_FALSE(fft::IsPowerOfTwo(3));
  EXPECT_FALSE(fft::IsPowerOfTwo(1023));
}

TEST(FftUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(fft::NextPowerOfTwo(1), 1u);
  EXPECT_EQ(fft::NextPowerOfTwo(2), 2u);
  EXPECT_EQ(fft::NextPowerOfTwo(3), 4u);
  EXPECT_EQ(fft::NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(fft::NextPowerOfTwo(1025), 2048u);
}

// --- fast kernels vs naive reference, parameterized over lengths ----------

class FftAgainstNaiveTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftAgainstNaiveTest, ForwardMatchesNaive) {
  const size_t n = GetParam();
  Rng rng(n * 7919 + 1);
  ComplexVec x = RandomComplexVec(&rng, n);
  ComplexVec expected = fft::NaiveDft(x, /*inverse=*/false);
  ComplexVec actual = x;
  fft::Transform(&actual, /*inverse=*/false);
  ExpectComplexNear(actual, expected, 1e-8 * static_cast<double>(n));
}

TEST_P(FftAgainstNaiveTest, InverseMatchesNaive) {
  const size_t n = GetParam();
  Rng rng(n * 7919 + 2);
  ComplexVec x = RandomComplexVec(&rng, n);
  ComplexVec expected = fft::NaiveDft(x, /*inverse=*/true);
  ComplexVec actual = x;
  fft::Transform(&actual, /*inverse=*/true);
  ExpectComplexNear(actual, expected, 1e-8 * static_cast<double>(n));
}

TEST_P(FftAgainstNaiveTest, RoundTripRecoversInput) {
  const size_t n = GetParam();
  Rng rng(n * 7919 + 3);
  ComplexVec x = RandomComplexVec(&rng, n);
  ComplexVec y = x;
  fft::Transform(&y, /*inverse=*/false);
  fft::Transform(&y, /*inverse=*/true);
  for (Complex& c : y) c /= static_cast<double>(n);  // unscaled kernels
  ExpectComplexNear(y, x, 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoAndOddSizes, FftAgainstNaiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 15, 16,
                                           31, 32, 33, 60, 64, 100, 127, 128,
                                           129, 255, 256, 1000, 1024));

// --- unitary convention ----------------------------------------------------

class UnitaryDftTest : public ::testing::TestWithParam<size_t> {};

TEST_P(UnitaryDftTest, ParsevalHolds) {
  const size_t n = GetParam();
  Rng rng(n + 40);
  RealVec x = RandomRealVec(&rng, n);
  EXPECT_NEAR(dft::ParsevalGap(x), 0.0, 1e-6 * (1.0 + cvec::Energy(x)));
}

TEST_P(UnitaryDftTest, InverseRoundTrip) {
  const size_t n = GetParam();
  Rng rng(n + 41);
  RealVec x = RandomRealVec(&rng, n);
  RealVec back = dft::InverseReal(dft::Forward(x));
  ExpectRealNear(back, x, 1e-8);
}

TEST_P(UnitaryDftTest, DistancePreserved) {
  // Eq. 8: D(x, y) == D(X, Y) under the unitary convention — the linchpin
  // of the whole indexing approach.
  const size_t n = GetParam();
  Rng rng(n + 42);
  RealVec x = RandomRealVec(&rng, n);
  RealVec y = RandomRealVec(&rng, n);
  const double dt = EuclideanDistance(x, y);
  const double df = cvec::Distance(dft::Forward(x), dft::Forward(y));
  EXPECT_NEAR(dt, df, 1e-8 * (1.0 + dt));
}

TEST_P(UnitaryDftTest, PrefixDistanceLowerBounds) {
  // Eq. 13/15: the truncated distance never exceeds the full distance —
  // no false dismissals.
  const size_t n = GetParam();
  Rng rng(n + 43);
  ComplexVec X = dft::Forward(RandomRealVec(&rng, n));
  ComplexVec Y = dft::Forward(RandomRealVec(&rng, n));
  const double full = cvec::Distance(X, Y);
  for (size_t k = 0; k <= n; k += (n >= 8 ? n / 8 : 1)) {
    EXPECT_LE(std::sqrt(cvec::PrefixDistanceSquared(X, Y, k)),
              full + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, UnitaryDftTest,
                         ::testing::Values(1, 2, 8, 15, 64, 100, 128, 1024));

TEST(UnitaryDftTest, KnownConstantSignal) {
  // DFT of (c, c, ..., c): X_0 = c * sqrt(n), all else 0 (Eq. 1).
  const size_t n = 16;
  RealVec x(n, 3.0);
  ComplexVec X = dft::Forward(x);
  EXPECT_NEAR(X[0].real(), 3.0 * std::sqrt(16.0), 1e-9);
  EXPECT_NEAR(X[0].imag(), 0.0, 1e-9);
  for (size_t f = 1; f < n; ++f) {
    EXPECT_NEAR(std::abs(X[f]), 0.0, 1e-9) << "f=" << f;
  }
}

TEST(UnitaryDftTest, KnownImpulseSignal) {
  // DFT of the unit impulse: flat spectrum of 1/sqrt(n).
  const size_t n = 8;
  RealVec x(n, 0.0);
  x[0] = 1.0;
  ComplexVec X = dft::Forward(x);
  for (size_t f = 0; f < n; ++f) {
    EXPECT_NEAR(X[f].real(), 1.0 / std::sqrt(8.0), 1e-12);
    EXPECT_NEAR(X[f].imag(), 0.0, 1e-12);
  }
}

TEST(UnitaryDftTest, LinearityOfDft) {
  // Eq. 5: a*x + b*y <-> a*X + b*Y.
  Rng rng(99);
  const size_t n = 64;
  RealVec x = RandomRealVec(&rng, n);
  RealVec y = RandomRealVec(&rng, n);
  RealVec combo(n);
  for (size_t i = 0; i < n; ++i) combo[i] = 2.5 * x[i] - 1.5 * y[i];
  ComplexVec expected(n);
  ComplexVec X = dft::Forward(x);
  ComplexVec Y = dft::Forward(y);
  for (size_t f = 0; f < n; ++f) expected[f] = 2.5 * X[f] - 1.5 * Y[f];
  ExpectComplexNear(dft::Forward(combo), expected, 1e-9);
}

TEST(UnitaryDftTest, RealSignalHasConjugateSymmetricSpectrum) {
  Rng rng(100);
  const size_t n = 32;
  ComplexVec X = dft::Forward(RandomRealVec(&rng, n));
  for (size_t f = 1; f < n; ++f) {
    EXPECT_NEAR(X[f].real(), X[n - f].real(), 1e-9);
    EXPECT_NEAR(X[f].imag(), -X[n - f].imag(), 1e-9);
  }
}

// --- circular convolution ---------------------------------------------------

class ConvolutionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ConvolutionTest, FftMatchesNaive) {
  const size_t n = GetParam();
  Rng rng(n + 7);
  RealVec x = RandomRealVec(&rng, n);
  RealVec y = RandomRealVec(&rng, n);
  ExpectRealNear(dft::CircularConvolution(x, y),
                 dft::CircularConvolutionNaive(x, y),
                 1e-7 * static_cast<double>(n));
}

TEST_P(ConvolutionTest, TransferFunctionMultiplicationEqualsConvolution) {
  // Eq. 6 with the unitary convention: Forward(conv(x, k)) =
  // TransferFunction(k) * Forward(x).
  const size_t n = GetParam();
  Rng rng(n + 8);
  RealVec x = RandomRealVec(&rng, n);
  RealVec kernel = RandomRealVec(&rng, n, -1.0, 1.0);
  ComplexVec via_transfer =
      cvec::Multiply(dft::TransferFunction(kernel), dft::Forward(x));
  ComplexVec via_conv = dft::Forward(dft::CircularConvolution(x, kernel));
  testing::ExpectComplexNear(via_conv, via_transfer,
                             1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ConvolutionTest,
                         ::testing::Values(1, 2, 4, 15, 16, 60, 128));

TEST(ConvolutionTest, ConvolutionIsCommutative) {
  Rng rng(55);
  const size_t n = 24;
  RealVec x = RandomRealVec(&rng, n);
  RealVec y = RandomRealVec(&rng, n);
  ExpectRealNear(dft::CircularConvolution(x, y),
                 dft::CircularConvolution(y, x), 1e-8);
}

// --- misc --------------------------------------------------------------------

TEST(DftTest, TruncateKeepsPrefix) {
  Rng rng(66);
  ComplexVec X = RandomComplexVec(&rng, 10);
  ComplexVec head = dft::Truncate(X, 3);
  ASSERT_EQ(head.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(head[i], X[i]);
  EXPECT_EQ(dft::Truncate(X, 0).size(), 0u);
  EXPECT_EQ(dft::Truncate(X, 10).size(), 10u);
}

TEST(DftTest, EnergyConcentrationOnRandomWalks) {
  // The indexing premise (Sec. 1.1): for random-walk style signals most
  // energy sits in the first few coefficients (after removing the mean the
  // claim applies to low frequencies).
  Rng rng(77);
  workload::RandomWalkOptions opts;
  double worst = 1.0;
  for (int trial = 0; trial < 20; ++trial) {
    RealVec x = workload::RandomWalkSeries(&rng, 128, opts);
    ComplexVec X = dft::Forward(x);
    // First 8 of 128 coefficients (including X_0, which holds the mean).
    worst = std::min(worst, dft::EnergyConcentration(X, 8));
  }
  EXPECT_GT(worst, 0.9);
}

TEST(DftTest, EnergyConcentrationEdgeCases) {
  ComplexVec zero(8, Complex(0.0, 0.0));
  EXPECT_EQ(dft::EnergyConcentration(zero, 4), 1.0);
  ComplexVec x(4, Complex(1.0, 0.0));
  EXPECT_NEAR(dft::EnergyConcentration(x, 2), 0.5, 1e-12);
  EXPECT_NEAR(dft::EnergyConcentration(x, 4), 1.0, 1e-12);
}

TEST(ComplexVecTest, ElementwiseOps) {
  ComplexVec x = {Complex(1, 2), Complex(3, -1)};
  ComplexVec y = {Complex(2, 0), Complex(0, 1)};
  ComplexVec prod = cvec::Multiply(x, y);
  EXPECT_EQ(prod[0], Complex(2, 4));
  EXPECT_EQ(prod[1], Complex(1, 3));
  ComplexVec sum = cvec::Add(x, y);
  EXPECT_EQ(sum[0], Complex(3, 2));
  ComplexVec diff = cvec::Subtract(x, y);
  EXPECT_EQ(diff[0], Complex(-1, 2));
  EXPECT_NEAR(cvec::Energy(x), 1 + 4 + 9 + 1, 1e-12);
  EXPECT_NEAR(cvec::Distance(x, x), 0.0, 1e-12);
}

TEST(ComplexVecTest, ApproxEqualRespectsTolerance) {
  ComplexVec x = {Complex(1.0, 1.0)};
  ComplexVec y = {Complex(1.0 + 1e-9, 1.0 - 1e-9)};
  EXPECT_TRUE(cvec::ApproxEqual(x, y, 1e-8));
  EXPECT_FALSE(cvec::ApproxEqual(x, y, 1e-10));
  EXPECT_FALSE(cvec::ApproxEqual(x, ComplexVec{}, 1.0));
}

}  // namespace
}  // namespace tsq
