// Copyright (c) 2026 The tsq Authors.
//
// Crash-consistency harness: fork a child that aborts (failpoint _exit,
// user-space buffers genuinely lost) at each registered crash site
// mid-ingest or mid-merge, reopen the database in the parent, and check
// the recovery invariants:
//
//   - the reopen itself succeeds (no crash state is unrecoverable),
//   - every series the child acknowledged AND flushed before arming the
//     crash is present and byte-exact,
//   - the surviving prefix is dense and self-consistent (every id below
//     size() yields its exact expected record — no holes, no torn tail),
//   - query answers over the recovered database are bit-identical to a
//     never-crashed baseline built from the same surviving series.
//
// The child drives the workload; the parent owns all assertions. A child
// exit code other than failpoint::kCrashExitCode means the crash site
// never fired (or the child tripped over something unrelated) and fails
// the test — each matrix entry proves the intended site terminated the
// process.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/database.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using testing::TempDir;

constexpr size_t kLength = 16;
constexpr size_t kFlushed = 12;  // acknowledged + flushed before the crash
constexpr size_t kTotal = 20;    // attempted by the crashing phase

// Child exit codes for failures that are not the intended crash.
constexpr int kChildSetupFailed = 40;
constexpr int kChildIngestFailed = 41;
constexpr int kChildFlushFailed = 42;
constexpr int kChildSurvived = 43;  // the failpoint never fired

/// The deterministic series `i` — both processes derive the expected
/// bytes from a fixed seed, so no state crosses the fork. Random walks
/// keep the shapes distinct: with degenerate (identical-shape) series
/// the kNN answer is a tie-break and would differ legitimately between
/// index layouts. (+1 so the post-recovery insert has a series too.)
RealVec SeriesValues(size_t i) {
  static auto* data = new std::vector<TimeSeries>(
      workload::MakeRandomWalkDataset(20260808, kTotal + 1, kLength));
  return (*data)[i].values();
}

std::string SeriesName(size_t i) { return "crash_s" + std::to_string(i); }

DatabaseOptions MakeOptions(const std::string& dir, Durability durability) {
  DatabaseOptions options;
  options.directory = dir;
  options.name = "crashdb";
  options.relation_segments = 2;
  options.durability = durability;
  return options;
}

/// What the child does after arming the crash failpoint.
enum class CrashPhase {
  kIngest,  // keep inserting one by one until the site fires
  kMerge,   // call Reindex() over a non-empty delta
};

struct CrashCase {
  const char* site;
  const char* spec;
  CrashPhase phase;
  Durability durability;
};

/// The child body: build the pre-crash state, arm the failpoint, drive
/// the crashing phase. Never returns — _exits with a diagnostic code if
/// the crash site fails to fire.
[[noreturn]] void ChildMain(const std::string& dir, const CrashCase& c) {
  auto db = Database::Create(MakeOptions(dir, c.durability));
  if (!db.ok()) ::_exit(kChildSetupFailed);
  // Phase 1: the series whose survival the parent asserts
  // unconditionally — acknowledged, indexed and flushed.
  for (size_t i = 0; i < kFlushed; ++i) {
    if (!(*db)->Insert(SeriesName(i), SeriesValues(i)).ok()) {
      ::_exit(kChildIngestFailed);
    }
  }
  if (!(*db)->BuildIndex().ok()) ::_exit(kChildIngestFailed);
  if (!(*db)->Flush().ok()) ::_exit(kChildFlushFailed);

  if (c.phase == CrashPhase::kMerge) {
    // Grow (and flush) the delta first so the merge has work; the merge
    // crash sites fire inside Reindex itself.
    for (size_t i = kFlushed; i < kTotal; ++i) {
      if (!(*db)->Insert(SeriesName(i), SeriesValues(i)).ok()) {
        ::_exit(kChildIngestFailed);
      }
    }
    if (!(*db)->Flush().ok()) ::_exit(kChildFlushFailed);
    if (!failpoint::Configure(c.site, c.spec).ok()) ::_exit(kChildSetupFailed);
    (void)(*db)->Reindex();  // expected to _exit inside
  } else {
    if (!failpoint::Configure(c.site, c.spec).ok()) ::_exit(kChildSetupFailed);
    for (size_t i = kFlushed; i < kTotal; ++i) {
      (void)(*db)->Insert(SeriesName(i), SeriesValues(i));  // expected to die
    }
  }
  ::_exit(kChildSurvived);
}

/// Collects range + kNN answers in an id-normalized, bitwise-comparable
/// form.
struct Answers {
  std::vector<Match> range;
  std::vector<Match> knn;
};

Result<Answers> Probe(Database* db) {
  Answers out;
  const RealVec probe = SeriesValues(3);
  TSQ_ASSIGN_OR_RETURN(out.range, db->RangeQuery(probe, 250.0));
  TSQ_ASSIGN_OR_RETURN(out.knn, db->Knn(probe, 5));
  auto by_id = [](const Match& a, const Match& b) { return a.id < b.id; };
  std::sort(out.range.begin(), out.range.end(), by_id);
  std::sort(out.knn.begin(), out.knn.end(), by_id);
  return out;
}

void ExpectIdentical(const std::vector<Match>& recovered,
                     const std::vector<Match>& baseline) {
  ASSERT_EQ(recovered.size(), baseline.size());
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].id, baseline[i].id);
    EXPECT_EQ(recovered[i].name, baseline[i].name);
    // Bit-identical, not approximately equal: recovery must not perturb
    // a single stored coefficient.
    EXPECT_EQ(recovered[i].distance, baseline[i].distance) << i;
  }
}

class CrashTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashTest, RecoversAfterCrashAtSite) {
  const CrashCase c = GetParam();
  TempDir dir;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) ChildMain(dir.path(), c);  // never returns

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode)
      << "crash site '" << c.site << "' did not terminate the child "
      << "(exit code " << WEXITSTATUS(wstatus) << ")";

  // Reopen what the crash left behind. This is the recovery under test.
  auto db = Database::Open(MakeOptions(dir.path(), c.durability));
  ASSERT_TRUE(db.ok()) << "reopen after crash at '" << c.site
                       << "' failed: " << db.status().ToString();

  // Acknowledged-and-flushed data is present; nothing bogus appeared.
  const size_t size = (*db)->size();
  EXPECT_GE(size, kFlushed) << "flushed series lost at '" << c.site << "'";
  EXPECT_LE(size, kTotal);
  for (size_t i = 0; i < size; ++i) {
    auto rec = (*db)->Get(i);
    ASSERT_TRUE(rec.ok()) << "id " << i << ": " << rec.status().ToString();
    EXPECT_EQ(rec->name, SeriesName(i));
    ASSERT_EQ(rec->values.size(), kLength);
    const RealVec expected = SeriesValues(i);
    for (size_t j = 0; j < kLength; ++j) {
      EXPECT_EQ(rec->values[j], expected[j]) << "id " << i << " [" << j << "]";
    }
  }
  EXPECT_FALSE((*db)->degraded());  // a clean reopen starts healthy

  // Answers over the recovered database are bit-identical to a database
  // that never crashed and holds exactly the surviving series.
  auto recovered = Probe(db->get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  TempDir baseline_dir;
  auto baseline_db =
      Database::Create(MakeOptions(baseline_dir.path(), Durability::kNone));
  ASSERT_TRUE(baseline_db.ok());
  for (size_t i = 0; i < size; ++i) {
    ASSERT_TRUE(
        (*baseline_db)->Insert(SeriesName(i), SeriesValues(i)).ok());
  }
  ASSERT_TRUE((*baseline_db)->BuildIndex().ok());
  auto baseline = Probe(baseline_db->get());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  ExpectIdentical(recovered->range, baseline->range);
  ExpectIdentical(recovered->knn, baseline->knn);

  // The recovered database accepts writes and keeps its dense ids.
  auto next = (*db)->Insert(SeriesName(size), SeriesValues(size));
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(*next, size);
}

INSTANTIATE_TEST_SUITE_P(
    CrashMatrix, CrashTest,
    ::testing::Values(
        // Ingest crashes: before any byte of the record lands, and with
        // a torn 9-byte prefix of the record on disk.
        CrashCase{"relation_append", "torn:bytes=0,skip=2",
                  CrashPhase::kIngest, Durability::kNone},
        CrashCase{"relation_append", "torn:bytes=9,skip=1",
                  CrashPhase::kIngest, Durability::kNone},
        // Crash after the group-commit write, before its sync barrier.
        CrashCase{"relation_sync", "torn", CrashPhase::kIngest,
                  Durability::kPerBatch},
        // Merge crashes bracketing the publish: before the temp tree is
        // flushed, after flush but before the rename, and after the
        // rename but before the directory fsync.
        CrashCase{"reindex_before_flush", "torn", CrashPhase::kMerge,
                  Durability::kNone},
        CrashCase{"reindex_before_rename", "torn", CrashPhase::kMerge,
                  Durability::kNone},
        CrashCase{"reindex_after_rename", "torn", CrashPhase::kMerge,
                  Durability::kNone}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      std::string name = info.param.site;
      name += info.param.phase == CrashPhase::kIngest ? "_ingest" : "_merge";
      name += "_" + std::to_string(info.index);
      return name;
    });

}  // namespace
}  // namespace tsq
