// Copyright (c) 2026 The tsq Authors.
//
// Shared helpers for the tsq test suite.

#ifndef TSQ_TESTS_TEST_UTIL_H_
#define TSQ_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "dft/complex_vec.h"
#include "gtest/gtest.h"
#include "spatial/point.h"
#include "spatial/rect.h"

namespace tsq {
namespace testing {

/// A unique temporary directory, removed at destruction.
class TempDir {
 public:
  TempDir() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag = "tsq";
    if (info != nullptr) {
      tag = std::string(info->test_suite_name()) + "_" + info->name();
      for (char& c : tag) {
        if (c == '/' || c == '\\') c = '_';
      }
    }
    path_ = std::filesystem::temp_directory_path() /
            (tag + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  std::string path() const { return path_.string(); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

/// Random vector helpers (deterministic via the seeded Rng).
inline RealVec RandomRealVec(Rng* rng, size_t n, double lo = -10.0,
                             double hi = 10.0) {
  RealVec out(n);
  for (double& v : out) v = rng->Uniform(lo, hi);
  return out;
}

inline ComplexVec RandomComplexVec(Rng* rng, size_t n, double lo = -10.0,
                                   double hi = 10.0) {
  ComplexVec out(n);
  for (Complex& c : out) {
    c = Complex(rng->Uniform(lo, hi), rng->Uniform(lo, hi));
  }
  return out;
}

inline spatial::Point RandomPoint(Rng* rng, size_t dims, double lo = -100.0,
                                  double hi = 100.0) {
  spatial::Point p(dims);
  for (double& v : p) v = rng->Uniform(lo, hi);
  return p;
}

inline spatial::Rect RandomRect(Rng* rng, size_t dims, double lo = -100.0,
                                double hi = 100.0) {
  spatial::Point a = RandomPoint(rng, dims, lo, hi);
  spatial::Point b = RandomPoint(rng, dims, lo, hi);
  for (size_t d = 0; d < dims; ++d) {
    if (a[d] > b[d]) std::swap(a[d], b[d]);
  }
  return spatial::Rect(std::move(a), std::move(b));
}

/// EXPECT helper: complex vectors elementwise close.
inline void ExpectComplexNear(const ComplexVec& actual,
                              const ComplexVec& expected, double tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i].real(), expected[i].real(), tol) << "at index " << i;
    EXPECT_NEAR(actual[i].imag(), expected[i].imag(), tol) << "at index " << i;
  }
}

/// EXPECT helper: real vectors elementwise close.
inline void ExpectRealNear(const RealVec& actual, const RealVec& expected,
                           double tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tol) << "at index " << i;
  }
}

}  // namespace testing
}  // namespace tsq

#endif  // TSQ_TESTS_TEST_UTIL_H_
