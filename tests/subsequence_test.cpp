// Copyright (c) 2026 The tsq Authors.
//
// Tests for the [FRM94]-style subsequence index: the sliding DFT against
// per-window transforms, trail-piece construction, and index-vs-scan
// parity (no false dismissals for subsequence queries), parameterized over
// thresholds, window sizes and trail-piece lengths.

#include <set>
#include <tuple>

#include "common/random.h"
#include "core/subsequence.h"
#include "dft/dft.h"
#include "gtest/gtest.h"
#include "series/distance.h"
#include "test_util.h"
#include "workload/random_walk.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

using testing::TempDir;

// ---------------------------------------------------------------------------
// Sliding DFT
// ---------------------------------------------------------------------------

class SlidingDftTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SlidingDftTest, MatchesPerWindowTransforms) {
  const auto [length, window] = GetParam();
  Rng rng(length * 13 + window);
  RealVec x = testing::RandomRealVec(&rng, length, -5.0, 5.0);
  const size_t k = std::min<size_t>(4, window);

  auto spectra = SlidingWindowSpectra(x, window, k);
  ASSERT_EQ(spectra.size(), length - window + 1);
  for (size_t pos = 0; pos < spectra.size(); ++pos) {
    RealVec win(x.begin() + static_cast<ptrdiff_t>(pos),
                x.begin() + static_cast<ptrdiff_t>(pos + window));
    ComplexVec expected = dft::Truncate(dft::Forward(win), k);
    for (size_t f = 0; f < k; ++f) {
      EXPECT_NEAR(spectra[pos][f].real(), expected[f].real(), 1e-7)
          << "pos=" << pos << " f=" << f;
      EXPECT_NEAR(spectra[pos][f].imag(), expected[f].imag(), 1e-7)
          << "pos=" << pos << " f=" << f;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlidingDftTest,
    ::testing::Values(std::make_tuple(32u, 8u), std::make_tuple(100u, 17u),
                      std::make_tuple(600u, 64u),
                      std::make_tuple(1500u, 128u),  // crosses resync points
                      std::make_tuple(64u, 64u)));   // single window

TEST(SlidingDftTest, ValidatesArguments) {
  RealVec x(16, 1.0);
  EXPECT_DEATH(SlidingWindowSpectra(x, 0, 1), "window");
  EXPECT_DEATH(SlidingWindowSpectra(x, 17, 1), "window");
  EXPECT_DEATH(SlidingWindowSpectra(x, 8, 9), "coefficients");
}

// ---------------------------------------------------------------------------
// Index vs brute-force scan
// ---------------------------------------------------------------------------

class SubsequenceParityTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {
 protected:
  TempDir dir_;
};

std::set<std::pair<SeriesId, size_t>> Positions(
    const std::vector<SubsequenceMatch>& ms) {
  std::set<std::pair<SeriesId, size_t>> out;
  for (const auto& m : ms) out.insert({m.id, m.offset});
  return out;
}

TEST_P(SubsequenceParityTest, IndexMatchesScan) {
  const auto [eps, trail_piece] = GetParam();
  const size_t window = 32;

  SubsequenceIndexOptions options;
  options.window = window;
  options.coefficients = 3;
  options.trail_piece = trail_piece;
  options.path = dir_.file("subseq.pages");
  auto index = SubsequenceIndex::Create(options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  auto series = workload::MakeRandomWalkDataset(99, 40, 200);
  for (SeriesId id = 0; id < series.size(); ++id) {
    ASSERT_TRUE((*index)->AddSeries(id, series[id].values()).ok());
  }
  EXPECT_EQ((*index)->num_windows(), 40u * (200 - window + 1));

  auto fetch = [&series](SeriesId id) -> Result<RealVec> {
    if (id >= series.size()) return Status::NotFound("no such series");
    return series[id].values();
  };

  Rng rng(7);
  for (int q = 0; q < 5; ++q) {
    // Queries drawn from the data (guaranteeing nonempty answers at small
    // eps) with a bit of noise.
    const RealVec& src = series[static_cast<size_t>(
                                    rng.UniformInt(0, 39))].values();
    const size_t off = static_cast<size_t>(rng.UniformInt(0, 200 - window));
    RealVec query(src.begin() + static_cast<ptrdiff_t>(off),
                  src.begin() + static_cast<ptrdiff_t>(off + window));
    for (double& v : query) v += rng.Uniform(-0.05, 0.05);

    std::vector<SubsequenceMatch> via_index;
    QueryStats stats;
    ASSERT_TRUE(
        (*index)->RangeSearch(query, eps, fetch, &via_index, &stats).ok());
    std::vector<SubsequenceMatch> via_scan;
    ASSERT_TRUE(ScanSubsequences(series, window, query, eps, &via_scan).ok());

    EXPECT_EQ(Positions(via_index), Positions(via_scan))
        << "eps=" << eps << " piece=" << trail_piece;
    ASSERT_EQ(via_index.size(), via_scan.size());
    for (size_t i = 0; i < via_index.size(); ++i) {
      EXPECT_NEAR(via_index[i].distance, via_scan[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsAndPieces, SubsequenceParityTest,
    ::testing::Combine(::testing::Values(0.5, 2.0, 8.0),
                       ::testing::Values(1u, 8u, 64u)));

// ---------------------------------------------------------------------------
// Behavior details
// ---------------------------------------------------------------------------

TEST(SubsequenceIndexTest, FindsExactOccurrenceAtZeroEps) {
  TempDir dir;
  SubsequenceIndexOptions options;
  options.window = 16;
  options.path = dir.file("s.pages");
  auto index = SubsequenceIndex::Create(options).value();
  Rng rng(3);
  auto series = workload::MakeRandomWalkDataset(3, 5, 100);
  for (SeriesId id = 0; id < series.size(); ++id) {
    ASSERT_TRUE(index->AddSeries(id, series[id].values()).ok());
  }
  // Query = the window of series 2 at offset 37, verbatim.
  RealVec query(series[2].values().begin() + 37,
                series[2].values().begin() + 37 + 16);
  std::vector<SubsequenceMatch> out;
  auto fetch = [&series](SeriesId id) -> Result<RealVec> {
    return series[id].values();
  };
  ASSERT_TRUE(index->RangeSearch(query, 1e-9, fetch, &out, nullptr).ok());
  ASSERT_FALSE(out.empty());
  bool found = false;
  for (const auto& m : out) {
    if (m.id == 2 && m.offset == 37) {
      found = true;
      EXPECT_NEAR(m.distance, 0.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SubsequenceIndexTest, CandidatesFarFewerThanWindows) {
  TempDir dir;
  SubsequenceIndexOptions options;
  options.window = 64;
  options.trail_piece = 16;
  options.path = dir.file("s.pages");
  auto index = SubsequenceIndex::Create(options).value();
  auto series = workload::MakeRandomWalkDataset(5, 50, 256);
  for (SeriesId id = 0; id < series.size(); ++id) {
    ASSERT_TRUE(index->AddSeries(id, series[id].values()).ok());
  }
  RealVec query(series[0].values().begin(),
                series[0].values().begin() + 64);
  std::vector<SubsequenceMatch> out;
  QueryStats stats;
  auto fetch = [&series](SeriesId id) -> Result<RealVec> {
    return series[id].values();
  };
  ASSERT_TRUE(index->RangeSearch(query, 1.0, fetch, &out, &stats).ok());
  // Trail pieces visited must be a small fraction of all pieces.
  EXPECT_LT(stats.candidates, index->num_pieces() / 4);
}

TEST(SubsequenceIndexTest, ValidatesArguments) {
  TempDir dir;
  SubsequenceIndexOptions options;
  options.window = 1;  // too small
  options.path = dir.file("s.pages");
  EXPECT_TRUE(SubsequenceIndex::Create(options).status().IsInvalidArgument());
  options.window = 16;
  options.coefficients = 0;
  EXPECT_TRUE(SubsequenceIndex::Create(options).status().IsInvalidArgument());
  options.coefficients = 3;
  options.trail_piece = 0;
  EXPECT_TRUE(SubsequenceIndex::Create(options).status().IsInvalidArgument());

  options.trail_piece = 8;
  options.path = dir.file("s2.pages");
  auto index = SubsequenceIndex::Create(options).value();
  EXPECT_TRUE(index->AddSeries(0, RealVec(8, 1.0)).IsInvalidArgument());
  std::vector<SubsequenceMatch> out;
  auto fetch = [](SeriesId) -> Result<RealVec> { return RealVec(); };
  EXPECT_TRUE(index->RangeSearch(RealVec(8, 1.0), 1.0, fetch, &out, nullptr)
                  .IsInvalidArgument());
  ASSERT_TRUE(index->AddSeries(0, RealVec(20, 1.0)).ok());
  EXPECT_TRUE(index->RangeSearch(RealVec(16, 1.0), -1.0, fetch, &out, nullptr)
                  .IsInvalidArgument());
}

TEST(SubsequenceIndexTest, ShortSeriesSkippedByScanBaseline) {
  std::vector<TimeSeries> series;
  series.emplace_back(RealVec(10, 1.0), "short");
  series.emplace_back(RealVec(40, 1.0), "flat");
  std::vector<SubsequenceMatch> out;
  ASSERT_TRUE(
      ScanSubsequences(series, 32, RealVec(32, 1.0), 0.5, &out).ok());
  // Only the length-40 series contributes windows; all are exact matches.
  EXPECT_EQ(out.size(), 40u - 32 + 1);
  for (const auto& m : out) EXPECT_EQ(m.id, 1u);
}

}  // namespace
}  // namespace tsq
