// Copyright (c) 2026 The tsq Authors.
//
// The observability subsystem suite: exact-count metrics under thread
// contention (run in CI's TSan job), histogram bucket boundary
// semantics, the Prometheus exposition format golden, the bit-identical
// answers contract of per-query stage tracing, slow-query-log threshold
// gating, the METRICS / stage-tail / server-counters wire extensions
// (round-trips plus the canonical-encoding rejections), and an
// end-to-end scrape through a live tsqd.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/database.h"
#include "engine/query_engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

using engine::BatchQuery;
using engine::BatchQueryKind;
using engine::BatchResult;

// ---------------------------------------------------------------------------
// Registry: exact counts under contention.
// ---------------------------------------------------------------------------

// N threads hammer one shared counter, one shared histogram and
// per-thread labeled counters (exercising FindOrCreate registration
// races). Relaxed atomics lose no updates: totals are exact, not
// approximate. This test is part of the TSan job's ctest selection.
TEST(MetricsRegistryTest, ExactCountsUnderConcurrency) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;

  obs::Registry reg;
  obs::Counter* shared = reg.GetCounter("tsq_test_shared_total");
  obs::Histogram* hist = reg.GetHistogram("tsq_test_lat_us");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Concurrent first-touch registration of a fresh label set.
      obs::Counter* mine = reg.GetCounter(
          "tsq_test_thread_total", "t=\"" + std::to_string(t) + "\"");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        shared->Add();
        mine->Add();
        hist->Observe(1000 * (i % 7 + 1));
        // Re-registration must be idempotent and race-free.
        if (i % 4096 == 0) {
          ASSERT_EQ(reg.GetCounter("tsq_test_shared_total"), shared);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(shared->Value(), kThreads * kPerThread);
  EXPECT_EQ(hist->Snap().total, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("tsq_test_thread_total",
                             "t=\"" + std::to_string(t) + "\"")
                  ->Value(),
              kPerThread);
  }
}

TEST(MetricsRegistryTest, ArmGateAndGauge) {
  // The arm switch is a process-global the instrumented sites branch on;
  // flipping it must be visible immediately from this thread.
  obs::DisarmMetrics();
  EXPECT_FALSE(obs::MetricsArmed());
  obs::ArmMetrics();
  EXPECT_TRUE(obs::MetricsArmed());
  obs::DisarmMetrics();
  EXPECT_FALSE(obs::MetricsArmed());

  obs::Registry reg;
  obs::Gauge* g = reg.GetGauge("tsq_test_height");
  g->Set(42);
  EXPECT_EQ(g->Value(), 42);
  g->Set(-7);
  EXPECT_EQ(g->Value(), -7);
}

// ---------------------------------------------------------------------------
// Histogram bucket semantics.
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  obs::Histogram h;
  // Bucket i holds observations with us <= 2^i; nanoseconds round UP to
  // whole microseconds so sub-us observations land in le="1", not below
  // the scale.
  h.Observe(1);     // 1 ns -> 1 us -> bucket 0
  h.Observe(999);   // -> 1 us -> bucket 0
  h.Observe(1000);  // exactly 1 us -> bucket 0
  h.Observe(1001);  // -> 2 us -> bucket 1
  h.Observe(2000);  // exactly 2 us -> bucket 1
  h.Observe(2001);  // -> 3 us -> bucket 2
  h.Observe(4000);  // exactly 4 us -> bucket 2
  h.Observe(4001);  // -> 5 us -> bucket 3

  obs::Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.counts[0], 3u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.total, 8u);
  EXPECT_EQ(snap.sum_nanos, 1 + 999 + 1000 + 1001 + 2000 + 2001 + 4000 + 4001);

  // The largest finite bound is 2^25 us; anything above clamps to +Inf.
  obs::Histogram big;
  const uint64_t largest_finite_nanos =
      obs::Histogram::BucketUpperMicros(obs::Histogram::kFiniteBuckets - 1) *
      1000;
  big.Observe(largest_finite_nanos);
  big.Observe(largest_finite_nanos + 1);
  big.Observe(~uint64_t{0} / 2);
  obs::Histogram::Snapshot bs = big.Snap();
  EXPECT_EQ(bs.counts[obs::Histogram::kFiniteBuckets - 1], 1u);
  EXPECT_EQ(bs.counts[obs::Histogram::kFiniteBuckets], 2u);
  EXPECT_EQ(bs.total, 3u);
}

TEST(HistogramTest, SnapshotDeltaAndQuantiles) {
  obs::Histogram h;
  EXPECT_EQ(obs::SnapshotQuantileMicros(h.Snap(), 0.5), 0.0);

  for (int i = 0; i < 100; ++i) h.Observe(1000);  // 100 x 1 us
  const obs::Histogram::Snapshot before = h.Snap();
  for (int i = 0; i < 100; ++i) h.Observe(8000);  // 100 x 8 us
  const obs::Histogram::Snapshot after = h.Snap();

  const obs::Histogram::Snapshot delta = obs::SnapshotDelta(after, before);
  EXPECT_EQ(delta.total, 100u);
  EXPECT_EQ(delta.counts[3], 100u);  // 8 us -> bucket 3 (le="8")
  EXPECT_EQ(delta.sum_nanos, 100u * 8000u);

  // Quantiles interpolate within the selected bucket, so they stay
  // inside that bucket's (lower, upper] range.
  const double p50 = obs::SnapshotQuantileMicros(delta, 0.5);
  EXPECT_GT(p50, 4.0);
  EXPECT_LE(p50, 8.0);
  // The full histogram is bimodal 1us/8us: the median sits in the low
  // bucket, the p99 in the high one.
  EXPECT_LE(obs::SnapshotQuantileMicros(after, 0.5), 1.0);
  EXPECT_GT(obs::SnapshotQuantileMicros(after, 0.99), 4.0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition golden.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, PrometheusExpositionGolden) {
  obs::Registry reg;
  reg.GetCounter("tsq_eggs_total")->Add(3);
  reg.GetCounter("tsq_rpc_total", "verb=\"ping\"")->Add(1);
  reg.GetCounter("tsq_rpc_total", "verb=\"stats\"")->Add(2);
  reg.GetGauge("tsq_depth")->Set(-4);
  obs::Histogram* h = reg.GetHistogram("tsq_lat_us");
  h->Observe(1000);  // 1 us -> bucket 0
  h->Observe(3000);  // 3 us -> bucket 2

  std::string expected;
  expected +=
      "# TYPE tsq_eggs_total counter\n"
      "tsq_eggs_total 3\n"
      "# TYPE tsq_rpc_total counter\n"
      "tsq_rpc_total{verb=\"ping\"} 1\n"
      "tsq_rpc_total{verb=\"stats\"} 2\n"
      "# TYPE tsq_depth gauge\n"
      "tsq_depth -4\n"
      "# TYPE tsq_lat_us histogram\n";
  for (size_t i = 0; i < obs::Histogram::kFiniteBuckets; ++i) {
    const uint64_t cumulative = i >= 2 ? 2 : 1;
    expected += "tsq_lat_us_bucket{le=\"" +
                std::to_string(obs::Histogram::BucketUpperMicros(i)) +
                "\"} " + std::to_string(cumulative) + "\n";
  }
  expected +=
      "tsq_lat_us_bucket{le=\"+Inf\"} 2\n"
      "tsq_lat_us_sum 4.000000\n"
      "tsq_lat_us_count 2\n";

  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

// ---------------------------------------------------------------------------
// Stage tracing: answers are bit-identical, stages account elapsed time.
// ---------------------------------------------------------------------------

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("TSQ_SLOW_QUERY_MS");
    data_ = workload::MakeRandomWalkDataset(20260808, 64, 64);
    DatabaseOptions options;
    options.directory = dir_.path();
    options.name = "traced";
    options.buffer_pool_frames = 16;  // small pool: queries touch disk
    options.buffer_pool_shards = 2;
    db_ = Database::Create(options).value();
    std::vector<std::string> names;
    std::vector<RealVec> values;
    for (const TimeSeries& s : data_) {
      names.push_back(s.name());
      values.push_back(s.values());
    }
    ASSERT_TRUE(db_->InsertBatch(names, values, 2).ok());
    ASSERT_TRUE(db_->BuildIndex().ok());
  }

  void TearDown() override {
    obs::DisarmTracing();
    obs::DisarmMetrics();
  }

  std::vector<BatchQuery> MakeBatch() const {
    std::vector<BatchQuery> batch;
    for (size_t i = 0; i < 12; ++i) {
      BatchQuery q;
      q.query = data_[(i * 11) % data_.size()].values();
      if (i % 3 == 0) {
        q.kind = BatchQueryKind::kKnn;
        q.k = 1 + i % 4;
      } else {
        q.kind = BatchQueryKind::kRange;
        q.epsilon = (i % 2 == 0) ? 2.0 : 6.0;
      }
      batch.push_back(std::move(q));
    }
    return batch;
  }

  testing::TempDir dir_;
  std::vector<TimeSeries> data_;
  std::unique_ptr<Database> db_;
};

TEST_F(TracingTest, AnswersBitIdenticalTracedVsUntraced) {
  const std::vector<BatchQuery> batch = MakeBatch();

  obs::DisarmTracing();
  auto plain = db_->RunBatch(batch, 2);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  obs::ArmTracing();
  auto traced = db_->RunBatch(batch, 2);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  obs::DisarmTracing();

  ASSERT_EQ(plain->size(), traced->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    const BatchResult& p = (*plain)[i];
    const BatchResult& t = (*traced)[i];
    ASSERT_TRUE(p.status.ok());
    ASSERT_TRUE(t.status.ok());
    // Bit-identical answers: the stage timers only read clocks.
    ASSERT_EQ(p.matches.size(), t.matches.size()) << "query " << i;
    for (size_t m = 0; m < p.matches.size(); ++m) {
      EXPECT_EQ(p.matches[m].id, t.matches[m].id) << "query " << i;
      EXPECT_EQ(p.matches[m].distance, t.matches[m].distance)
          << "query " << i;
    }

    // Untraced stats carry no stage times (canonical form).
    EXPECT_FALSE(p.stats.traced);
    EXPECT_EQ(p.stats.prepare_ms, 0.0);
    EXPECT_EQ(p.stats.descent_ms, 0.0);
    EXPECT_EQ(p.stats.delta_ms, 0.0);
    EXPECT_EQ(p.stats.pool_wait_ms, 0.0);
    EXPECT_EQ(p.stats.refine_ms, 0.0);

    // Traced stats: flag set, and the exclusive (self-time) stages sum
    // to at most the query's wall time.
    EXPECT_TRUE(t.stats.traced);
    const double stage_sum = t.stats.prepare_ms + t.stats.descent_ms +
                             t.stats.delta_ms + t.stats.pool_wait_ms +
                             t.stats.refine_ms;
    EXPECT_GT(stage_sum, 0.0) << "query " << i;
    EXPECT_LE(stage_sum, t.stats.elapsed_ms + 1e-6) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Slow-query log gating.
// ---------------------------------------------------------------------------

TEST(SlowQueryTest, ThresholdGatesTheLog) {
  ::unsetenv("TSQ_SLOW_QUERY_MS");
  obs::Counter* slow = obs::RegisterCounter("tsq_slow_queries_total");

  auto data = workload::MakeRandomWalkDataset(4242, 32, 64);
  std::vector<std::string> names;
  std::vector<RealVec> values;
  for (const TimeSeries& s : data) {
    names.push_back(s.name());
    values.push_back(s.values());
  }

  auto build = [&](const std::string& dir, uint64_t slow_ms) {
    DatabaseOptions options;
    options.directory = dir;
    options.name = "slowlog";
    options.slow_query_ms = slow_ms;
    // A pool far smaller than the relation, so a scan always faults.
    options.buffer_pool_frames = 8;
    options.buffer_pool_shards = 1;
    auto db = Database::Create(options).value();
    EXPECT_TRUE(db->InsertBatch(names, values, 2).ok());
    return db;
  };

  // Every positioned read sleeps (the relation's record reads go
  // through io_pread): the scan below is guaranteed to cross a 1 ms
  // threshold without depending on host speed.
  const auto slow_reads = [] {
    failpoint::SetCallback("io_pread", [](uint64_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  };

  {
    // Disabled (the default): even a genuinely slow query logs nothing.
    testing::TempDir dir;
    auto db = build(dir.path(), 0);
    slow_reads();
    const uint64_t before = slow->Value();
    auto matches = db->ScanRangeQuery(data[0].values(), 2.0);
    failpoint::Clear("io_pread");
    ASSERT_TRUE(matches.ok()) << matches.status().ToString();
    EXPECT_EQ(slow->Value(), before);
  }

  {
    // Enabled with a 1 ms threshold: the same slow scan crosses it.
    testing::TempDir dir;
    auto db = build(dir.path(), 1);
    slow_reads();
    const uint64_t before = slow->Value();
    auto matches = db->ScanRangeQuery(data[0].values(), 2.0);
    failpoint::Clear("io_pread");
    ASSERT_TRUE(matches.ok()) << matches.status().ToString();
    EXPECT_GT(slow->Value(), before);
  }

  // Enabling the slow-query log arms tracing process-wide; restore.
  obs::DisarmTracing();
  obs::DisarmMetrics();
}

// ---------------------------------------------------------------------------
// Wire protocol: METRICS verb, stage tail, server counters.
// ---------------------------------------------------------------------------

/// Strips the 16-byte frame header Encode* prepends; the decoders
/// consume the bare payload.
std::vector<uint8_t> PayloadOf(const serde::Buffer& frame) {
  return std::vector<uint8_t>(frame.data() + server::kFrameHeaderBytes,
                              frame.data() + frame.size());
}

TEST(ObsProtocolTest, MetricsVerbRoundTrips) {
  server::Request request;
  request.verb = server::Verb::kMetrics;
  request.id = 99;
  serde::Buffer frame;
  server::EncodeRequest(request, &frame);
  std::vector<uint8_t> payload = PayloadOf(frame);
  server::Request out;
  Status status =
      server::DecodeRequest(payload.data(), payload.size(), &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(out.verb, server::Verb::kMetrics);
  EXPECT_EQ(out.id, 99u);

  server::Reply reply;
  reply.verb = server::Verb::kMetrics;
  reply.id = 99;
  reply.metrics_text = "# TYPE tsq_eggs_total counter\ntsq_eggs_total 3\n";
  frame.clear();
  server::EncodeReply(reply, &frame);
  payload = PayloadOf(frame);
  server::Reply reply_out;
  status = server::DecodeReply(payload.data(), payload.size(), &reply_out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reply_out.verb, server::Verb::kMetrics);
  EXPECT_EQ(reply_out.metrics_text, reply.metrics_text);
}

TEST(ObsProtocolTest, ServerCountersRideTheStatsReply) {
  server::Request request;
  request.verb = server::Verb::kStats;
  request.id = 7;
  request.want_server_counters = true;
  serde::Buffer frame;
  server::EncodeRequest(request, &frame);
  std::vector<uint8_t> payload = PayloadOf(frame);
  server::Request req_out;
  Status status =
      server::DecodeRequest(payload.data(), payload.size(), &req_out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(req_out.want_server_counters);

  server::Reply reply;
  reply.verb = server::Verb::kStats;
  reply.id = 7;
  reply.has_server_counters = true;
  reply.server_counters.connections_accepted = 11;
  reply.server_counters.connections_closed = 10;
  reply.server_counters.frames_received = 900;
  reply.server_counters.requests_executed = 850;
  reply.server_counters.busy_rejected = 40;
  reply.server_counters.protocol_errors = 3;
  reply.server_counters.accept_backoffs = 1;
  frame.clear();
  server::EncodeReply(reply, &frame);
  payload = PayloadOf(frame);
  server::Reply out;
  status = server::DecodeReply(payload.data(), payload.size(), &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(out.has_server_counters);
  EXPECT_EQ(out.server_counters.connections_accepted, 11u);
  EXPECT_EQ(out.server_counters.connections_closed, 10u);
  EXPECT_EQ(out.server_counters.frames_received, 900u);
  EXPECT_EQ(out.server_counters.requests_executed, 850u);
  EXPECT_EQ(out.server_counters.busy_rejected, 40u);
  EXPECT_EQ(out.server_counters.protocol_errors, 3u);
  EXPECT_EQ(out.server_counters.accept_backoffs, 1u);

  // Without the flag the reply keeps the pre-extension layout.
  reply.has_server_counters = false;
  frame.clear();
  server::EncodeReply(reply, &frame);
  payload = PayloadOf(frame);
  status = server::DecodeReply(payload.data(), payload.size(), &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(out.has_server_counters);
}

TEST(ObsProtocolTest, RequestFlagRejections) {
  // Unknown verb-word flag bits must be rejected, not ignored.
  serde::Buffer payload;
  serde::PutU32(&payload, 0x800u | uint32_t(server::Verb::kPing));
  serde::PutU64(&payload, 1);
  server::Request out;
  Status status =
      server::DecodeRequest(payload.data(), payload.size(), &out);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();

  // The counters flag is only meaningful on kStats.
  payload.clear();
  serde::PutU32(&payload, 0x100u | uint32_t(server::Verb::kPing));
  serde::PutU64(&payload, 2);
  status = server::DecodeRequest(payload.data(), payload.size(), &out);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

/// Encodes a one-result kQuery reply whose stats carry the given stage
/// trace, returning the bare payload.
std::vector<uint8_t> EncodeTracedQueryReply(bool traced, double refine_ms) {
  server::Reply reply;
  reply.verb = server::Verb::kQuery;
  reply.id = 5;
  BatchResult result;
  result.matches.push_back(Match{3, "s3", 1.25});
  result.stats.answers = 1;
  result.stats.elapsed_ms = 9.0;
  result.stats.traced = traced;
  result.stats.prepare_ms = traced ? 1.0 : 0.0;
  result.stats.descent_ms = traced ? 2.0 : 0.0;
  result.stats.delta_ms = traced ? 0.5 : 0.0;
  result.stats.pool_wait_ms = traced ? 1.5 : 0.0;
  result.stats.refine_ms = refine_ms;
  reply.results.push_back(std::move(result));
  serde::Buffer frame;
  server::EncodeReply(reply, &frame);
  return PayloadOf(frame);
}

TEST(ObsProtocolTest, StageTailRoundTrips) {
  std::vector<uint8_t> payload =
      EncodeTracedQueryReply(/*traced=*/true, /*refine_ms=*/3.5);
  server::Reply out;
  Status status = server::DecodeReply(payload.data(), payload.size(), &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(out.results.size(), 1u);
  const QueryStats& stats = out.results[0].stats;
  EXPECT_TRUE(stats.traced);
  EXPECT_EQ(stats.prepare_ms, 1.0);
  EXPECT_EQ(stats.descent_ms, 2.0);
  EXPECT_EQ(stats.delta_ms, 0.5);
  EXPECT_EQ(stats.pool_wait_ms, 1.5);
  EXPECT_EQ(stats.refine_ms, 3.5);

  // An untraced reply has no stage tail at all — same bytes as before
  // the extension — and decodes with zeroed stage fields.
  payload = EncodeTracedQueryReply(/*traced=*/false, /*refine_ms=*/0.0);
  status = server::DecodeReply(payload.data(), payload.size(), &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(out.results[0].stats.traced);
  EXPECT_EQ(out.results[0].stats.refine_ms, 0.0);
}

TEST(ObsProtocolTest, StageTailCanonicalEncodingRejections) {
  // The stage tail ends the payload: u32 traced + 5 doubles = 44 bytes.
  constexpr size_t kTailBytes = 4 + 5 * 8;

  // traced > 1 is not a bool.
  std::vector<uint8_t> payload =
      EncodeTracedQueryReply(/*traced=*/true, /*refine_ms=*/3.5);
  payload[payload.size() - kTailBytes] = 2;
  server::Reply out;
  Status status = server::DecodeReply(payload.data(), payload.size(), &out);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();

  // An untraced result must not carry stage times.
  payload = EncodeTracedQueryReply(/*traced=*/true, /*refine_ms=*/3.5);
  payload[payload.size() - kTailBytes] = 0;
  status = server::DecodeReply(payload.data(), payload.size(), &out);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();

  // The stage flag itself is canonical: if no result is traced the
  // extension must be absent, so a flagged reply where every traced
  // word is 0 (and every stage time 0.0) is rejected too.
  payload = EncodeTracedQueryReply(/*traced=*/true, /*refine_ms=*/0.0);
  std::memset(payload.data() + payload.size() - kTailBytes, 0, kTailBytes);
  status = server::DecodeReply(payload.data(), payload.size(), &out);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

// ---------------------------------------------------------------------------
// End to end: scrape a live tsqd.
// ---------------------------------------------------------------------------

TEST(ObsEndToEndTest, MetricsScrapeAndStatsCounters) {
  ::unsetenv("TSQ_SLOW_QUERY_MS");
  testing::TempDir dir;
  auto data = workload::MakeRandomWalkDataset(20260808, 48, 64);
  DatabaseOptions options;
  options.directory = dir.path();
  options.name = "scraped";
  auto db = Database::Create(options).value();
  std::vector<std::string> names;
  std::vector<RealVec> values;
  for (const TimeSeries& s : data) {
    names.push_back(s.name());
    values.push_back(s.values());
  }
  ASSERT_TRUE(db->InsertBatch(names, values, 2).ok());
  ASSERT_TRUE(db->BuildIndex().ok());

  server::ServerOptions server_options;
  server_options.engine_threads = 2;
  auto started = server::Server::Start(db.get(), server_options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  auto server = std::move(*started);

  auto connected = server::Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(*connected);

  // Drive one query so per-verb metrics have something to say.
  auto answer = client->Range(data[0].values(), 2.0);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  auto scrape = client->Metrics();
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  const std::string& text = *scrape;
  EXPECT_NE(text.find("# TYPE tsqd_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("tsqd_requests_total{verb=\"query\"} "),
            std::string::npos);
  EXPECT_NE(text.find("tsqd_request_latency_us_bucket{verb=\"query\",le="),
            std::string::npos);
  EXPECT_NE(text.find("tsq_series 48"), std::string::npos);
  EXPECT_NE(text.find("tsq_index_epoch "), std::string::npos);
  EXPECT_NE(text.find("tsq_degraded 0"), std::string::npos);
  EXPECT_NE(text.find("tsqd_frames_received_total "), std::string::npos);

  // A second scrape sees strictly more frames (the first scrape itself).
  auto scrape2 = client->Metrics();
  ASSERT_TRUE(scrape2.ok()) << scrape2.status().ToString();
  EXPECT_NE(scrape2->find("tsqd_requests_total{verb=\"metrics\"} "),
            std::string::npos);

  // The extended STATS reply carries the server counters.
  server::ServerCounters counters;
  auto stats = client->Stats(&counters);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->series, 48u);
  EXPECT_GE(counters.connections_accepted, 1u);
  EXPECT_GE(counters.frames_received, 3u);
  EXPECT_GE(counters.requests_executed, 1u);

  client.reset();
  server->Stop();
  obs::DisarmMetrics();  // Server::Start armed the process-wide switch
}

}  // namespace
}  // namespace tsq
