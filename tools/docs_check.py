#!/usr/bin/env python3
"""Documentation consistency checks, run by the CI docs-check job.

Two classes of failure:

1. Dead relative links: every markdown link in every tracked .md file
   whose target is a relative path must resolve to an existing file
   (anchors and external URLs are skipped; an anchor on a relative
   link is checked against the target file's headings).

2. Stale contract prose: the v4 delta-index PR removed the exclusive
   R*-tree fold-in from the ingest path. Header comment blocks and the
   README must not still describe the old contract. The patterns below
   are the phrases that described it; any hit is a failure with the
   offending file:line printed.

3. Required sections: load-bearing doc sections that later PRs link to
   (the kernel determinism contract, the wire-protocol extension rule,
   the benchmark tables) must keep existing under their exact heading —
   renaming one silently breaks the cross-references and the contract
   of record.

Exit status 0 = clean, 1 = problems found. No dependencies beyond the
standard library; run from anywhere inside the repository.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Markdown inline links [text](target) — good enough for our docs; code
# spans are stripped first so `[i](j)` in C++ snippets is not a link.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")

# Phrases that describe the pre-v4 exclusive fold-in contract. Checked
# against README.md and every header under src/. Case-insensitive.
STALE_PATTERNS = [
    r"exclusive\s+R\*?-?tree\s+fold-?in",
    r"fold-?in\s+takes\s+the\s+writers",
    r"brief\s+exclusive\s+lock",
    r"index_mutex_",
    r"fold[s]?\s+new\s+points\s+into\s+the\s+live\s+(R\*?-?)?tree",
]

SKIP_DIRS = {".git", "build", "build-tsan", "third_party", ".github"}

# Doc sections other files cross-reference by heading. Path (relative
# to the repo root) -> exact headings that must exist in that file.
REQUIRED_SECTIONS = {
    "docs/ARCHITECTURE.md": [
        "Kernel layer & dispatch",
        "Invariants",
        "Lock inventory",
        "Observability",
    ],
    "docs/WIRE_PROTOCOL.md": [
        "Versioning",
        "Optional-extension flag bits",
        "Metrics exposition",
    ],
    "README.md": [
        "Kernels",
        "Approximate kNN",
        "Benchmarks",
        "Metrics",
    ],
}


def tracked_files(suffixes):
    out = []
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS and
                   not d.startswith("build")]
        for f in files:
            if any(f.endswith(s) for s in suffixes):
                out.append(os.path.join(root, f))
    return sorted(out)


def github_anchor(heading):
    """GitHub's heading -> anchor slug (ASCII approximation)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path):
    anchors = set()
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_anchor(m.group(1)))
    return anchors


def check_links(md_files):
    problems = []
    for path in md_files:
        in_fence = False
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                stripped = CODE_SPAN_RE.sub("", line)
                for target in LINK_RE.findall(stripped):
                    if re.match(r"[a-z][a-z0-9+.-]*:", target):
                        continue  # external URL (http:, mailto:, ...)
                    base, _, anchor = target.partition("#")
                    if not base:
                        # Same-file anchor.
                        if anchor and github_anchor(anchor) not in \
                                anchors_of(path):
                            problems.append(
                                f"{path}:{lineno}: dead anchor "
                                f"'#{anchor}'")
                        continue
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), base))
                    if not os.path.exists(resolved):
                        problems.append(
                            f"{path}:{lineno}: dead link '{target}' "
                            f"(resolved to {resolved})")
                    elif anchor and resolved.endswith(".md"):
                        if github_anchor(anchor) not in anchors_of(resolved):
                            problems.append(
                                f"{path}:{lineno}: dead anchor "
                                f"'{target}'")
    return problems


def check_stale_prose(files):
    problems = []
    regexes = [re.compile(p, re.IGNORECASE) for p in STALE_PATTERNS]
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        # Join continuation lines so a phrase split across a comment
        # block's line wrap still matches.
        joined = re.sub(r"\n//\s*", " ", text)
        joined = re.sub(r"\s+", " ", joined)
        for rx in regexes:
            if rx.search(joined):
                # Recover an approximate line for the report.
                lineno = 1
                for i, line in enumerate(text.splitlines(), 1):
                    if rx.search(line):
                        lineno = i
                        break
                problems.append(
                    f"{path}:{lineno}: stale pre-v4 contract prose "
                    f"matches /{rx.pattern}/")
    return problems


def check_required_sections():
    problems = []
    for rel_path, headings in REQUIRED_SECTIONS.items():
        path = os.path.join(REPO, rel_path)
        if not os.path.exists(path):
            problems.append(f"{rel_path}: required doc file is missing")
            continue
        present = set()
        in_fence = False
        with open(path, encoding="utf-8") as f:
            for line in f:
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    present.add(m.group(1).strip())
        for heading in headings:
            if heading not in present:
                problems.append(
                    f"{rel_path}: required section '{heading}' is missing")
    return problems


def main():
    md_files = tracked_files([".md"])
    headers = [p for p in tracked_files([".h"])
               if os.sep + "src" + os.sep in p]
    readme = os.path.join(REPO, "README.md")
    prose_files = headers + ([readme] if os.path.exists(readme) else [])

    problems = (check_links(md_files) + check_stale_prose(prose_files) +
                check_required_sections())
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        for p in problems:
            print("  " + os.path.relpath(p, REPO) if p.startswith(REPO)
                  else "  " + p)
        return 1
    print(f"docs-check: OK ({len(md_files)} markdown files, "
          f"{len(prose_files)} prose-checked sources)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
