// Copyright (c) 2026 The tsq Authors.
//
// tsq command-line tool: create a similarity-searchable database from a
// CSV of time series and query it — the artifact a downstream user runs
// without writing C++.
//
// Usage:
//   tsq_cli create  --db DIR/NAME --csv FILE [--segments N] [--threads T]
//   tsq_cli import  --db DIR/NAME --csv FILE [--threads T]
//   tsq_cli info    --db DIR/NAME
//   tsq_cli range   --db DIR/NAME --series NAME --eps X
//                   [--transform mavg:20 | ewma:0.3:20 | reverse | identity]
//                   [--mode both|data]
//   tsq_cli knn     --db DIR/NAME --series NAME --k K [--transform ...]
//   tsq_cli join    --db DIR/NAME --eps X [--transform ...]
//                   [--method scan|scan-fast|index|index-transform|tree]
//   tsq_cli reindex --db DIR/NAME        (fold the delta into a fresh tree)
//   tsq_cli demo    --db DIR/NAME [--count N] [--days D]   (simulated market)
//
// Commands that open a database locally (create/import/serve/demo) accept
// --durability none|flush|batch to pick the fdatasync policy (see
// DatabaseOptions::durability); default none matches the historical
// buffered behavior.
//
// tsqd server + remote client commands (src/server/):
//   tsq_cli serve         --db DIR/NAME [--host H] [--port P] [--workers N]
//                         [--engine-threads T] [--max-inflight M]
//                         [--merge-interval-ms MS] [--merge-min-delta N]
//   tsq_cli remote-ping   [--host H] [--port P]
//   tsq_cli remote-stats  [--host H] [--port P]
//   tsq_cli remote-metrics [--host H] [--port P]  (Prometheus exposition)
//   tsq_cli remote-import [--host H] [--port P] --csv FILE
//   tsq_cli remote-range  [--host H] [--port P] --csv FILE --series NAME
//                         --eps X [--transform T] [--mode both|data]
//   tsq_cli remote-knn    [--host H] [--port P] --csv FILE --series NAME
//                         --k K [--transform T] [--epsilon E] [--probes N]
//                         [--first-leaf 1]   (approximate kNN knobs)
//   tsq_cli remote-join   [--host H] [--port P] --eps X [--transform T]
//   tsq_cli remote-reindex [--host H] [--port P]
//   tsq_cli remote-flush  [--host H] [--port P]   (durability barrier)
//   tsq_cli remote-repair [--host H] [--port P]   (lift read-only state)
//
// --db takes "directory/name"; files NAME.rel / NAME.idx are stored in the
// directory. --series names a stored series to use as the query point; the
// remote query commands read it from a local --csv file instead (the wire
// protocol ships query values, not names). Default remote endpoint:
// 127.0.0.1:4741. `serve` honors TSQ_LOG_LEVEL (debug|info|warn|error|off).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <sstream>
#include <thread>
#include <vector>

#include "tsq.h"
#include "workload/csv.h"

namespace {

using namespace tsq;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  const char* Get(const std::string& key) const {
    auto it = options.find(key);
    return it == options.end() ? nullptr : it->second.c_str();
  }
  std::string GetOr(const std::string& key, const std::string& fallback) const {
    const char* v = Get(key);
    return v == nullptr ? fallback : v;
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tsq_cli create --db DIR/NAME --csv FILE [--segments N] "
      "[--threads T] [--durability D]\n"
      "  tsq_cli import --db DIR/NAME --csv FILE [--threads T] "
      "[--durability D]\n"
      "  tsq_cli info   --db DIR/NAME\n"
      "  tsq_cli range  --db DIR/NAME --series NAME --eps X [--transform T] "
      "[--mode both|data]\n"
      "  tsq_cli knn    --db DIR/NAME --series NAME --k K [--transform T]\n"
      "  tsq_cli join   --db DIR/NAME --eps X [--transform T] [--method M]\n"
      "  tsq_cli reindex --db DIR/NAME\n"
      "  tsq_cli demo   --db DIR/NAME [--count N] [--days D]\n"
      "  tsq_cli serve  --db DIR/NAME [--host H] [--port P] [--pollers N] "
      "[--workers N] [--engine-threads T] [--max-inflight M] "
      "[--merge-interval-ms MS] [--merge-min-delta N] [--durability D]\n"
      "  tsq_cli remote-ping|remote-stats|remote-metrics [--host H] "
      "[--port P]\n"
      "  tsq_cli remote-import [--host H] [--port P] --csv FILE\n"
      "  tsq_cli remote-range  [--host H] [--port P] --csv FILE --series NAME "
      "--eps X [--transform T] [--mode both|data]\n"
      "  tsq_cli remote-knn    [--host H] [--port P] --csv FILE --series NAME "
      "--k K [--transform T] [--epsilon E] [--probes N] [--first-leaf 1]\n"
      "  tsq_cli remote-join   [--host H] [--port P] --eps X [--transform T]\n"
      "  tsq_cli remote-reindex|remote-flush|remote-repair [--host H] "
      "[--port P]\n"
      "remote-* also take [--timeout-ms MS] (bound connect and each "
      "send/recv; default 0 = block) and [--retries N] (retry idempotent "
      "requests on BUSY/timeout with backoff; default 0)\n"
      "durability levels: none | flush | batch (fdatasync policy; "
      "default none)\n"
      "transforms: identity | mavg:W | ewma:ALPHA:W | reverse | scale:F | "
      "shift:D\n"
      "join methods: scan | scan-fast | index | index-transform | tree\n"
      "default remote endpoint: 127.0.0.1:4741\n");
  return 2;
}

constexpr uint16_t kDefaultPort = 4741;

bool ParseArgs(int argc, char** argv, Args* out) {
  if (argc < 2) return false;
  out->command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return false;
    out->options[argv[i] + 2] = argv[i + 1];
  }
  return true;
}

/// Splits "dir/name" into DatabaseOptions directory + name.
bool SplitDbPath(const std::string& path, DatabaseOptions* options) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    options->directory = ".";
    options->name = path;
  } else {
    options->directory = path.substr(0, slash);
    options->name = path.substr(slash + 1);
  }
  return !options->name.empty();
}

/// Applies --durability to a DatabaseOptions; true on success (including
/// the flag being absent).
bool ParseDurability(const Args& args, DatabaseOptions* options) {
  const std::string level = args.GetOr("durability", "none");
  if (level == "none") {
    options->durability = Durability::kNone;
  } else if (level == "flush") {
    options->durability = Durability::kOnFlush;
  } else if (level == "batch") {
    options->durability = Durability::kPerBatch;
  } else {
    return false;
  }
  return true;
}

/// Parses "mavg:20", "ewma:0.3:20", "reverse", "scale:2", "shift:5",
/// "identity".
Result<FeatureTransform> ParseTransform(const std::string& spec, size_t n) {
  std::vector<std::string> parts;
  std::string part;
  std::stringstream stream(spec);
  while (std::getline(stream, part, ':')) parts.push_back(part);
  if (parts.empty()) return Status::InvalidArgument("empty transform spec");
  const std::string& kind = parts[0];
  auto arg = [&parts](size_t i) { return std::stod(parts.at(i)); };
  if (kind == "identity") {
    return FeatureTransform::Spectral(transforms::Identity(n));
  }
  if (kind == "mavg" && parts.size() == 2) {
    return FeatureTransform::Spectral(
        transforms::MovingAverage(n, static_cast<size_t>(arg(1))));
  }
  if (kind == "ewma" && parts.size() == 3) {
    return FeatureTransform::Spectral(transforms::ExponentialMovingAverage(
        n, arg(1), static_cast<size_t>(arg(2))));
  }
  if (kind == "reverse") {
    return FeatureTransform::Spectral(transforms::Reverse(n));
  }
  if (kind == "scale" && parts.size() == 2) {
    return FeatureTransform::Spectral(transforms::Scale(n, arg(1)));
  }
  if (kind == "shift" && parts.size() == 2) {
    return FeatureTransform::Spectral(transforms::Shift(n, arg(1)));
  }
  return Status::InvalidArgument("unknown transform spec '" + spec + "'");
}

/// Finds a stored series by name (linear scan over the relation).
Result<SeriesRecord> FindByName(Database* db, const std::string& name) {
  SeriesRecord found;
  bool hit = false;
  Status s = db->relation()->Scan([&](const SeriesRecord& rec) {
    if (rec.name == name) {
      found = rec;
      hit = true;
      return false;
    }
    return true;
  });
  if (!s.ok()) return s;
  if (!hit) return Status::NotFound("no series named '" + name + "'");
  return found;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Splits loaded series into the parallel name/value vectors InsertBatch
/// takes.
void ToBatch(const std::vector<TimeSeries>& series,
             std::vector<std::string>* names, std::vector<RealVec>* values) {
  names->reserve(series.size());
  values->reserve(series.size());
  for (const TimeSeries& s : series) {
    names->push_back(s.name());
    values->push_back(s.values());
  }
}

int CmdCreate(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  const char* csv = args.Get("csv");
  if (db_path == nullptr || csv == nullptr || !SplitDbPath(db_path, &options)) {
    return Usage();
  }
  options.relation_segments = std::stoul(args.GetOr("segments", "4"));
  if (!ParseDurability(args, &options)) return Usage();
  const size_t threads = std::stoul(args.GetOr("threads", "0"));
  std::filesystem::create_directories(options.directory);
  auto series = workload::LoadCsv(csv);
  if (!series.ok()) return Fail(series.status());
  auto db = Database::Create(options);
  if (!db.ok()) return Fail(db.status());
  std::vector<std::string> names;
  std::vector<RealVec> values;
  ToBatch(*series, &names, &values);
  if (auto ids = (*db)->InsertBatch(names, values, threads); !ids.ok()) {
    return Fail(ids.status());
  }
  if (Status s = (*db)->BuildIndex(); !s.ok()) return Fail(s);
  if (Status s = (*db)->Flush(); !s.ok()) return Fail(s);
  std::printf("created %s/%s: %llu series of length %zu, index built\n",
              options.directory.c_str(), options.name.c_str(),
              static_cast<unsigned long long>((*db)->size()),
              (*db)->series_length());
  return 0;
}

int CmdImport(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  const char* csv = args.Get("csv");
  if (db_path == nullptr || csv == nullptr || !SplitDbPath(db_path, &options)) {
    return Usage();
  }
  if (!ParseDurability(args, &options)) return Usage();
  const size_t threads = std::stoul(args.GetOr("threads", "0"));
  auto series = workload::LoadCsv(csv);
  if (!series.ok()) return Fail(series.status());
  auto db = Database::Open(options);
  if (!db.ok()) return Fail(db.status());
  std::vector<std::string> names;
  std::vector<RealVec> values;
  ToBatch(*series, &names, &values);
  auto ids = (*db)->InsertBatch(names, values, threads);
  if (!ids.ok()) return Fail(ids.status());
  if (ids->empty()) {
    std::printf("nothing to import from empty CSV\n");
    return 0;
  }
  if (Status s = (*db)->Flush(); !s.ok()) return Fail(s);
  std::printf("imported %zu series into %s/%s (ids %llu..%llu, %s): "
              "now %llu series\n",
              ids->size(), options.directory.c_str(), options.name.c_str(),
              static_cast<unsigned long long>(ids->front()),
              static_cast<unsigned long long>(ids->back()),
              (*db)->index_built() ? "indexed" : "no index yet",
              static_cast<unsigned long long>((*db)->size()));
  return 0;
}

int CmdDemo(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  if (db_path == nullptr || !SplitDbPath(db_path, &options)) return Usage();
  if (!ParseDurability(args, &options)) return Usage();
  std::filesystem::create_directories(options.directory);
  workload::StockMarketOptions market;
  market.num_series = std::stoul(args.GetOr("count", "1067"));
  market.length = std::stoul(args.GetOr("days", "128"));
  auto series = workload::MakeStockMarket(20260610, market);
  auto db = Database::Create(options);
  if (!db.ok()) return Fail(db.status());
  for (const TimeSeries& s : series) {
    auto id = (*db)->Insert(s.name(), s.values());
    if (!id.ok()) return Fail(id.status());
  }
  if (Status s = (*db)->BuildIndex(); !s.ok()) return Fail(s);
  if (Status s = (*db)->Flush(); !s.ok()) return Fail(s);
  std::printf(
      "created demo market %s/%s: %llu stocks x %zu days (planted SIMa/SIMb "
      "trend twins and OPPa/OPPb opposite movers)\n",
      options.directory.c_str(), options.name.c_str(),
      static_cast<unsigned long long>((*db)->size()), (*db)->series_length());
  return 0;
}

int CmdInfo(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  if (db_path == nullptr || !SplitDbPath(db_path, &options)) return Usage();
  auto db = Database::Open(options);
  if (!db.ok()) return Fail(db.status());
  std::printf("database   %s/%s\n", options.directory.c_str(),
              options.name.c_str());
  std::printf("series     %llu x length %zu\n",
              static_cast<unsigned long long>((*db)->size()),
              (*db)->series_length());
  std::printf("index      %s\n", (*db)->index_built() ? "built" : "none");
  if ((*db)->index_built()) {
    const auto* tree = (*db)->index()->tree();
    std::printf("  dims %zu, height %u, node capacity %zu, %llu entries\n",
                tree->dims(), tree->height(), tree->node_capacity(),
                static_cast<unsigned long long>(tree->size()));
    const DatabaseStats stats = (*db)->StatsSnapshot();
    std::printf("  epoch %llu, %llu unmerged delta entries, "
                "%llu merges completed\n",
                static_cast<unsigned long long>(stats.index_epoch),
                static_cast<unsigned long long>(stats.delta_entries),
                static_cast<unsigned long long>(stats.merges_completed));
  }
  return 0;
}

int CmdReindex(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  if (db_path == nullptr || !SplitDbPath(db_path, &options)) return Usage();
  auto db = Database::Open(options);
  if (!db.ok()) return Fail(db.status());
  const DatabaseStats before = (*db)->StatsSnapshot();
  auto epoch = (*db)->Reindex();
  if (!epoch.ok()) return Fail(epoch.status());
  if (Status s = (*db)->Flush(); !s.ok()) return Fail(s);
  std::printf("merged %llu delta entries; epoch %llu, tree %llu entries\n",
              static_cast<unsigned long long>(before.delta_entries),
              static_cast<unsigned long long>(*epoch),
              static_cast<unsigned long long>((*db)->index()->size()));
  return 0;
}

int CmdRange(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  const char* series_name = args.Get("series");
  const char* eps = args.Get("eps");
  if (db_path == nullptr || series_name == nullptr || eps == nullptr ||
      !SplitDbPath(db_path, &options)) {
    return Usage();
  }
  auto db = Database::Open(options);
  if (!db.ok()) return Fail(db.status());
  auto query = FindByName(db->get(), series_name);
  if (!query.ok()) return Fail(query.status());

  QuerySpec spec;
  if (const char* t = args.Get("transform")) {
    auto transform = ParseTransform(t, (*db)->series_length());
    if (!transform.ok()) return Fail(transform.status());
    spec.transform = *transform;
  }
  if (args.GetOr("mode", "both") == "data") {
    spec.mode = TransformMode::kDataOnly;
  }
  auto matches = (*db)->RangeQuery(query->values, std::stod(eps), spec);
  if (!matches.ok()) return Fail(matches.status());
  std::printf("%zu matches:\n", matches->size());
  for (const Match& m : *matches) {
    std::printf("  %-16s %.6f\n", m.name.c_str(), m.distance);
  }
  const QueryStats& stats = (*db)->last_stats();
  std::printf("(%llu candidates, %llu node accesses, %.3f ms)\n",
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.nodes_visited),
              stats.elapsed_ms);
  return 0;
}

int CmdKnn(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  const char* series_name = args.Get("series");
  if (db_path == nullptr || series_name == nullptr ||
      !SplitDbPath(db_path, &options)) {
    return Usage();
  }
  auto db = Database::Open(options);
  if (!db.ok()) return Fail(db.status());
  auto query = FindByName(db->get(), series_name);
  if (!query.ok()) return Fail(query.status());
  QuerySpec spec;
  if (const char* t = args.Get("transform")) {
    auto transform = ParseTransform(t, (*db)->series_length());
    if (!transform.ok()) return Fail(transform.status());
    spec.transform = *transform;
  }
  const size_t k = std::stoul(args.GetOr("k", "5"));
  KnnOptions knn_options;
  knn_options.epsilon = std::stod(args.GetOr("epsilon", "0"));
  knn_options.probe_budget = std::stoull(args.GetOr("probes", "0"));
  knn_options.stop_after_first_leaf = args.GetOr("first-leaf", "0") == "1";
  auto matches = (*db)->Knn(query->values, k, spec, knn_options);
  if (!matches.ok()) return Fail(matches.status());
  std::printf("%zu nearest neighbors of %s:\n", matches->size(), series_name);
  for (const Match& m : *matches) {
    std::printf("  %-16s %.6f\n", m.name.c_str(), m.distance);
  }
  const QueryStats& qs = (*db)->last_stats();
  std::printf("visited %llu, pruned %llu",
              static_cast<unsigned long long>(qs.candidates),
              static_cast<unsigned long long>(qs.pruned));
  if (qs.approx) {
    std::printf(", max relative error %.6f (approximate)", qs.max_error);
  }
  std::printf("\n");
  return 0;
}

int CmdJoin(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  const char* eps = args.Get("eps");
  if (db_path == nullptr || eps == nullptr || !SplitDbPath(db_path, &options)) {
    return Usage();
  }
  auto db = Database::Open(options);
  if (!db.ok()) return Fail(db.status());

  std::optional<FeatureTransform> transform;
  if (const char* t = args.Get("transform")) {
    auto parsed = ParseTransform(t, (*db)->series_length());
    if (!parsed.ok()) return Fail(parsed.status());
    transform = *parsed;
  }
  const std::string method_name = args.GetOr("method", "tree");
  JoinMethod method;
  if (method_name == "scan") {
    method = JoinMethod::kScanFull;
  } else if (method_name == "scan-fast") {
    method = JoinMethod::kScanEarlyAbandon;
  } else if (method_name == "index") {
    method = JoinMethod::kIndexPlain;
  } else if (method_name == "index-transform") {
    method = JoinMethod::kIndexTransformed;
  } else if (method_name == "tree") {
    method = JoinMethod::kTreeMatch;
  } else {
    return Usage();
  }

  auto pairs = (*db)->SelfJoin(std::stod(eps), method, transform);
  if (!pairs.ok()) return Fail(pairs.status());
  std::printf("%zu pairs (method %s):\n", pairs->size(), method_name.c_str());
  size_t shown = 0;
  for (const JoinPair& p : *pairs) {
    if (p.first > p.second) continue;  // print each unordered pair once
    auto a = (*db)->Get(p.first);
    auto b = (*db)->Get(p.second);
    if (!a.ok() || !b.ok()) continue;
    std::printf("  %-16s %-16s %.6f\n", a->name.c_str(), b->name.c_str(),
                p.distance);
    if (++shown >= 50) {
      std::printf("  ... (%zu more)\n", pairs->size() - shown);
      break;
    }
  }
  std::printf("(%.3f ms)\n", (*db)->last_stats().elapsed_ms);
  return 0;
}

// ---------------------------------------------------------------------------
// tsqd server + remote client commands
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int CmdServe(const Args& args) {
  DatabaseOptions options;
  const char* db_path = args.Get("db");
  if (db_path == nullptr || !SplitDbPath(db_path, &options)) return Usage();
  Logger::ReloadFromEnv();
  // The merge cadence is a database knob: the background thread folds the
  // delta into a fresh tree whenever it holds >= merge-min-delta entries.
  options.merge_interval_ms =
      std::stoull(args.GetOr("merge-interval-ms", "0"));
  options.merge_min_delta = std::stoull(args.GetOr("merge-min-delta", "1"));
  if (!ParseDurability(args, &options)) return Usage();
  auto db = Database::Open(options);
  if (!db.ok()) return Fail(db.status());

  server::ServerOptions server_options;
  server_options.host = args.GetOr("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(
      std::stoul(args.GetOr("port", std::to_string(kDefaultPort))));
  server_options.pollers = std::stoul(args.GetOr("pollers", "0"));
  server_options.workers = std::stoul(args.GetOr("workers", "0"));
  server_options.engine_threads =
      std::stoul(args.GetOr("engine-threads", "0"));
  server_options.max_inflight = std::stoul(args.GetOr("max-inflight", "128"));
  auto server = server::Server::Start(db->get(), server_options);
  if (!server.ok()) return Fail(server.status());

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::printf(
      "tsqd serving %s/%s (%llu series) on %s:%u with %zu pollers — "
      "Ctrl-C stops\n",
      options.directory.c_str(), options.name.c_str(),
      static_cast<unsigned long long>((*db)->size()),
      server_options.host.c_str(), (*server)->port(), (*server)->pollers());
  std::fflush(stdout);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining and stopping tsqd\n");
  (*server)->Stop();
  const server::ServerCounters counters = (*server)->counters();
  std::printf(
      "served %llu connections (%llu closed), %llu frames, %llu requests, "
      "%llu busy-rejected, %llu protocol errors, %llu accept backoffs\n",
      static_cast<unsigned long long>(counters.connections_accepted),
      static_cast<unsigned long long>(counters.connections_closed),
      static_cast<unsigned long long>(counters.frames_received),
      static_cast<unsigned long long>(counters.requests_executed),
      static_cast<unsigned long long>(counters.busy_rejected),
      static_cast<unsigned long long>(counters.protocol_errors),
      static_cast<unsigned long long>(counters.accept_backoffs));
  if (Status s = (*db)->Flush(); !s.ok()) return Fail(s);
  return 0;
}

Result<std::unique_ptr<server::Client>> ConnectRemote(const Args& args) {
  server::ClientOptions client_options;
  const uint64_t timeout_ms = std::stoull(args.GetOr("timeout-ms", "0"));
  client_options.connect_timeout_ms = timeout_ms;
  client_options.io_timeout_ms = timeout_ms;
  client_options.max_retries =
      static_cast<uint32_t>(std::stoul(args.GetOr("retries", "0")));
  return server::Client::Connect(
      args.GetOr("host", "127.0.0.1"),
      static_cast<uint16_t>(
          std::stoul(args.GetOr("port", std::to_string(kDefaultPort)))),
      client_options);
}

int CmdRemotePing(const Args& args) {
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  if (Status s = (*client)->Ping(); !s.ok()) return Fail(s);
  std::printf("pong\n");
  return 0;
}

int CmdRemoteReindex(const Args& args) {
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  auto epoch = (*client)->Reindex();
  if (!epoch.ok()) return Fail(epoch.status());
  std::printf("reindexed; server now at epoch %llu\n",
              static_cast<unsigned long long>(*epoch));
  return 0;
}

int CmdRemoteFlush(const Args& args) {
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  if (Status s = (*client)->Flush(); !s.ok()) return Fail(s);
  std::printf("flushed\n");
  return 0;
}

int CmdRemoteRepair(const Args& args) {
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  if (Status s = (*client)->Repair(); !s.ok()) return Fail(s);
  std::printf("repaired; writes resumed\n");
  return 0;
}

int CmdRemoteStats(const Args& args) {
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  server::ServerCounters counters;
  auto stats = (*client)->Stats(&counters);
  if (!stats.ok()) return Fail(stats.status());
  std::printf("series        %llu x length %llu\n",
              static_cast<unsigned long long>(stats->series),
              static_cast<unsigned long long>(stats->series_length));
  std::printf("index         %s\n", stats->index_built ? "built" : "none");
  if (stats->index_built) {
    std::printf("  tree        %llu entries, height %llu, dims %llu\n",
                static_cast<unsigned long long>(stats->tree_entries),
                static_cast<unsigned long long>(stats->tree_height),
                static_cast<unsigned long long>(stats->tree_dims));
    std::printf("  epoch       %llu, %llu unmerged delta entries, "
                "%llu merges completed\n",
                static_cast<unsigned long long>(stats->index_epoch),
                static_cast<unsigned long long>(stats->delta_entries),
                static_cast<unsigned long long>(stats->merges_completed));
    std::printf("  pool        %llu hits, %llu misses, %llu evictions, "
                "%llu disk reads, %llu disk writes\n",
                static_cast<unsigned long long>(stats->pool_hits),
                static_cast<unsigned long long>(stats->pool_misses),
                static_cast<unsigned long long>(stats->pool_evictions),
                static_cast<unsigned long long>(stats->pool_disk_reads),
                static_cast<unsigned long long>(stats->pool_disk_writes));
    std::printf("  traversal   %llu nodes, %llu rect transforms, "
                "%llu leaf entries tested\n",
                static_cast<unsigned long long>(stats->nodes_visited),
                static_cast<unsigned long long>(stats->rect_transforms),
                static_cast<unsigned long long>(stats->leaf_entries_tested));
  }
  std::printf("relation      %llu records read, %llu bytes read, "
              "%llu bytes written\n",
              static_cast<unsigned long long>(stats->relation_records_read),
              static_cast<unsigned long long>(stats->relation_bytes_read),
              static_cast<unsigned long long>(stats->relation_bytes_written));
  std::printf("health        %s (%llu write faults, %llu repairs)\n",
              stats->degraded ? "DEGRADED (read-only; run remote-repair)"
                              : "ok",
              static_cast<unsigned long long>(stats->write_faults),
              static_cast<unsigned long long>(stats->repairs_completed));
  std::printf("server        %llu connections accepted, %llu closed\n",
              static_cast<unsigned long long>(counters.connections_accepted),
              static_cast<unsigned long long>(counters.connections_closed));
  std::printf("  requests    %llu frames, %llu executed, %llu busy-rejected, "
              "%llu protocol errors, %llu accept backoffs\n",
              static_cast<unsigned long long>(counters.frames_received),
              static_cast<unsigned long long>(counters.requests_executed),
              static_cast<unsigned long long>(counters.busy_rejected),
              static_cast<unsigned long long>(counters.protocol_errors),
              static_cast<unsigned long long>(counters.accept_backoffs));
  return 0;
}

int CmdRemoteMetrics(const Args& args) {
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  auto text = (*client)->Metrics();
  if (!text.ok()) return Fail(text.status());
  // The exposition is already newline-terminated text; print it verbatim
  // so the output pipes straight into a scrape file.
  std::fwrite(text->data(), 1, text->size(), stdout);
  return 0;
}

int CmdRemoteImport(const Args& args) {
  const char* csv = args.Get("csv");
  if (csv == nullptr) return Usage();
  auto series = workload::LoadCsv(csv);
  if (!series.ok()) return Fail(series.status());
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  std::vector<std::string> names;
  std::vector<RealVec> values;
  ToBatch(*series, &names, &values);
  auto ids = (*client)->InsertBatch(names, values);
  if (!ids.ok()) return Fail(ids.status());
  if (ids->empty()) {
    std::printf("nothing to import from empty CSV\n");
    return 0;
  }
  std::printf("imported %zu series remotely (ids %llu..%llu)\n", ids->size(),
              static_cast<unsigned long long>(ids->front()),
              static_cast<unsigned long long>(ids->back()));
  return 0;
}

/// Loads --csv and picks the --series row as the remote query point.
Result<RealVec> LoadQuerySeries(const Args& args) {
  const char* csv = args.Get("csv");
  const char* series_name = args.Get("series");
  if (csv == nullptr || series_name == nullptr) {
    return Status::InvalidArgument("remote queries need --csv and --series");
  }
  TSQ_ASSIGN_OR_RETURN(std::vector<TimeSeries> series,
                       workload::LoadCsv(csv));
  for (const TimeSeries& s : series) {
    if (s.name() == series_name) return s.values();
  }
  return Status::NotFound("no series named '" + std::string(series_name) +
                          "' in " + csv);
}

/// Builds the QuerySpec for a remote query; the series length needed by
/// --transform comes from the server's stats.
Result<QuerySpec> MakeRemoteSpec(const Args& args, server::Client* client) {
  QuerySpec spec;
  if (const char* t = args.Get("transform")) {
    TSQ_ASSIGN_OR_RETURN(DatabaseStats stats, client->Stats());
    TSQ_ASSIGN_OR_RETURN(spec.transform,
                         ParseTransform(t, stats.series_length));
  }
  if (args.GetOr("mode", "both") == "data") {
    spec.mode = TransformMode::kDataOnly;
  }
  return spec;
}

int CmdRemoteRange(const Args& args) {
  const char* eps = args.Get("eps");
  if (eps == nullptr) return Usage();
  auto query = LoadQuerySeries(args);
  if (!query.ok()) return Fail(query.status());
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  auto spec = MakeRemoteSpec(args, client->get());
  if (!spec.ok()) return Fail(spec.status());
  auto matches = (*client)->Range(*query, std::stod(eps), *spec);
  if (!matches.ok()) return Fail(matches.status());
  std::printf("%zu matches:\n", matches->size());
  for (const Match& m : *matches) {
    std::printf("  %-16s %.6f\n", m.name.c_str(), m.distance);
  }
  return 0;
}

int CmdRemoteKnn(const Args& args) {
  auto query = LoadQuerySeries(args);
  if (!query.ok()) return Fail(query.status());
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  auto spec = MakeRemoteSpec(args, client->get());
  if (!spec.ok()) return Fail(spec.status());
  const size_t k = std::stoul(args.GetOr("k", "5"));
  KnnOptions options;
  options.epsilon = std::stod(args.GetOr("epsilon", "0"));
  options.probe_budget = std::stoull(args.GetOr("probes", "0"));
  options.stop_after_first_leaf = args.GetOr("first-leaf", "0") == "1";
  QueryStats stats;
  auto matches = (*client)->Knn(*query, k, *spec, options, &stats);
  if (!matches.ok()) return Fail(matches.status());
  std::printf("%zu nearest neighbors:\n", matches->size());
  for (const Match& m : *matches) {
    std::printf("  %-16s %.6f\n", m.name.c_str(), m.distance);
  }
  std::printf("visited %llu, pruned %llu",
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.pruned));
  if (stats.approx) {
    std::printf(", max relative error %.6f (approximate)", stats.max_error);
  }
  std::printf("\n");
  return 0;
}

int CmdRemoteJoin(const Args& args) {
  const char* eps = args.Get("eps");
  if (eps == nullptr) return Usage();
  auto client = ConnectRemote(args);
  if (!client.ok()) return Fail(client.status());
  std::optional<FeatureTransform> transform;
  if (const char* t = args.Get("transform")) {
    auto stats = (*client)->Stats();
    if (!stats.ok()) return Fail(stats.status());
    auto parsed = ParseTransform(t, stats->series_length);
    if (!parsed.ok()) return Fail(parsed.status());
    transform = *parsed;
  }
  auto pairs = (*client)->SelfJoin(std::stod(eps), transform);
  if (!pairs.ok()) return Fail(pairs.status());
  size_t unordered = 0;
  for (const JoinPair& p : *pairs) {
    if (p.first < p.second) ++unordered;
  }
  std::printf("%zu ordered pairs (%zu unordered); first few ids:\n",
              pairs->size(), unordered);
  size_t shown = 0;
  for (const JoinPair& p : *pairs) {
    if (p.first > p.second) continue;
    std::printf("  %llu <-> %llu  %.6f\n",
                static_cast<unsigned long long>(p.first),
                static_cast<unsigned long long>(p.second), p.distance);
    if (++shown >= 20) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.command == "create") return CmdCreate(args);
  if (args.command == "import") return CmdImport(args);
  if (args.command == "demo") return CmdDemo(args);
  if (args.command == "info") return CmdInfo(args);
  if (args.command == "range") return CmdRange(args);
  if (args.command == "knn") return CmdKnn(args);
  if (args.command == "join") return CmdJoin(args);
  if (args.command == "reindex") return CmdReindex(args);
  if (args.command == "serve") return CmdServe(args);
  if (args.command == "remote-ping") return CmdRemotePing(args);
  if (args.command == "remote-stats") return CmdRemoteStats(args);
  if (args.command == "remote-metrics") return CmdRemoteMetrics(args);
  if (args.command == "remote-import") return CmdRemoteImport(args);
  if (args.command == "remote-range") return CmdRemoteRange(args);
  if (args.command == "remote-knn") return CmdRemoteKnn(args);
  if (args.command == "remote-join") return CmdRemoteJoin(args);
  if (args.command == "remote-reindex") return CmdRemoteReindex(args);
  if (args.command == "remote-flush") return CmdRemoteFlush(args);
  if (args.command == "remote-repair") return CmdRemoteRepair(args);
  return Usage();
}
