#!/usr/bin/env python3
"""Validates tsqd METRICS scrapes, run by the CI server-smoke step.

Usage:  metrics_check.py SCRAPE1 [SCRAPE2]

SCRAPE1/SCRAPE2 are files holding the text a `tsq_cli remote-metrics`
scrape printed (Prometheus text exposition). Checks, in order:

1. Well-formedness: every non-empty line is either `# TYPE family type`
   or `name{labels} value` with a parseable numeric value; every sample
   belongs to a family announced by a TYPE line.

2. Required families: the gauges and counters the dashboards and the
   bench-perf job key on must exist — the per-verb request counters and
   latency histograms, the server front-end counters, and the engine
   state gauges (series count, index epoch, degradation flag).

3. Histogram shape: every `_bucket` series is cumulative in `le` order,
   ends with an `le="+Inf"` bucket, and agrees with its `_count` sample;
   a `_sum` sample exists.

4. Monotonicity (with SCRAPE2): every counter sample of SCRAPE1 exists
   in SCRAPE2 with a value >= SCRAPE1's — counters never go backwards
   between two scrapes of the same server.

Exit status 0 = clean, 1 = problems found. No dependencies beyond the
standard library.
"""

import re
import sys

TYPE_RE = re.compile(r"^# TYPE ([A-Za-z_:][A-Za-z0-9_:]*) "
                     r"(counter|gauge|histogram)$")
SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)"
                       r"(?:\{([^}]*)\})? (-?[0-9.eE+]+|[+-]Inf|NaN)$")
LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="([^"]*)"')

# Families a tsqd scrape must always carry, with their announced type.
REQUIRED_FAMILIES = {
    "tsqd_requests_total": "counter",
    "tsqd_request_latency_us": "histogram",
    "tsqd_connections_accepted_total": "counter",
    "tsqd_frames_received_total": "counter",
    "tsqd_requests_executed_total": "counter",
    "tsqd_busy_rejected_total": "counter",
    "tsqd_protocol_errors_total": "counter",
    "tsq_series": "gauge",
    "tsq_index_epoch": "gauge",
    "tsq_delta_entries": "gauge",
    "tsq_degraded": "gauge",
    "tsq_query_stage_self_us": "histogram",
    "tsq_slow_queries_total": "counter",
}

# At least these per-verb label sets must exist on the request counter
# (the smoke drives ping, stats and metrics at minimum).
REQUIRED_VERBS = ["ping", "stats", "metrics"]


class Scrape:
    def __init__(self):
        self.types = {}    # family -> type
        self.samples = {}  # (name, labels-string) -> float
        self.order = []    # (name, labels-string) in file order


def base_family(name):
    """Strips the histogram sample suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse(path):
    scrape = Scrape()
    problems = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                m = TYPE_RE.match(line)
                if not m:
                    problems.append(f"{path}:{lineno}: malformed comment "
                                    f"line {line!r}")
                    continue
                family, kind = m.groups()
                if scrape.types.get(family, kind) != kind:
                    problems.append(f"{path}:{lineno}: family '{family}' "
                                    f"re-announced as {kind}")
                scrape.types[family] = kind
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                problems.append(f"{path}:{lineno}: malformed sample line "
                                f"{line!r}")
                continue
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            try:
                value = float(value)
            except ValueError:
                problems.append(f"{path}:{lineno}: unparseable value in "
                                f"{line!r}")
                continue
            family = base_family(name)
            if family not in scrape.types and name not in scrape.types:
                problems.append(f"{path}:{lineno}: sample '{name}' has no "
                                f"preceding # TYPE line")
            key = (name, labels)
            if key in scrape.samples:
                problems.append(f"{path}:{lineno}: duplicate sample "
                                f"{name}{{{labels}}}")
            scrape.samples[key] = value
            scrape.order.append(key)
    return scrape, problems


def check_required(path, scrape):
    problems = []
    for family, kind in REQUIRED_FAMILIES.items():
        got = scrape.types.get(family)
        if got is None:
            problems.append(f"{path}: required family '{family}' missing")
        elif got != kind:
            problems.append(f"{path}: family '{family}' is a {got}, "
                            f"expected {kind}")
    for verb in REQUIRED_VERBS:
        key = ("tsqd_requests_total", f'verb="{verb}"')
        if key not in scrape.samples:
            problems.append(f"{path}: no tsqd_requests_total sample for "
                            f"verb=\"{verb}\"")
    return problems


def histogram_series(scrape):
    """Groups _bucket samples: (family, labels-minus-le) -> [(le, value)]."""
    series = {}
    for (name, labels), value in scrape.samples.items():
        if not name.endswith("_bucket"):
            continue
        family = base_family(name)
        parts = dict(LABEL_RE.findall(labels))
        le = parts.pop("le", None)
        rest = ",".join(f'{k}="{v}"' for k, v in sorted(parts.items()))
        series.setdefault((family, rest), []).append((le, value))
    return series


def check_histograms(path, scrape):
    problems = []
    for (family, rest), buckets in sorted(histogram_series(scrape).items()):
        where = f"{path}: {family}{{{rest}}}"
        if any(le is None for le, _ in buckets):
            problems.append(f"{where}: _bucket sample without an le label")
            continue
        finite = sorted((float(le), v) for le, v in buckets if le != "+Inf")
        inf = [v for le, v in buckets if le == "+Inf"]
        if not inf:
            problems.append(f"{where}: no le=\"+Inf\" bucket")
            continue
        ordered = [v for _, v in finite] + inf
        for a, b in zip(ordered, ordered[1:]):
            if b < a:
                problems.append(f"{where}: buckets not cumulative "
                                f"({a} then {b})")
                break
        count = scrape.samples.get((family + "_count", rest))
        if count is None:
            problems.append(f"{where}: missing _count sample")
        elif count != inf[0]:
            problems.append(f"{where}: +Inf bucket {inf[0]} != _count "
                            f"{count}")
        if (family + "_sum", rest) not in scrape.samples:
            problems.append(f"{where}: missing _sum sample")
    return problems


def check_monotone(path1, scrape1, path2, scrape2):
    problems = []
    for (name, labels), before in scrape1.samples.items():
        family = base_family(name)
        kind = scrape2.types.get(family) or scrape2.types.get(name)
        if kind == "gauge" or name.endswith("_sum"):
            continue  # gauges move freely; _sum is float-summed
        after = scrape2.samples.get((name, labels))
        if after is None:
            problems.append(f"{path2}: sample {name}{{{labels}}} present "
                            f"in {path1} but missing from the later scrape")
        elif after < before:
            problems.append(f"{path2}: {name}{{{labels}}} went backwards "
                            f"({before} -> {after})")
    return problems


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    scrape1, problems = parse(argv[1])
    problems += check_required(argv[1], scrape1)
    problems += check_histograms(argv[1], scrape1)
    if len(argv) == 3:
        scrape2, more = parse(argv[2])
        problems += more
        problems += check_required(argv[2], scrape2)
        problems += check_histograms(argv[2], scrape2)
        problems += check_monotone(argv[1], scrape1, argv[2], scrape2)
    if problems:
        print(f"metrics-check: {len(problems)} problem(s)")
        for p in problems:
            print("  " + p)
        return 1
    scrapes = len(argv) - 1
    print(f"metrics-check: OK ({scrapes} scrape(s), "
          f"{len(scrape1.samples)} samples in the first)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
