// Copyright (c) 2026 The tsq Authors.
//
// Hedging pairs: the paper's Example 2.2 as an application. Find all pairs
// of stocks that move in approximately *opposite* ways — candidates for a
// hedge — using the reversing transformation:
//
//   "Transformation Trev can be used to obtain all the pairs of series
//    that move in opposite directions. This can be formulated in our query
//    language for a given relation r as a spatial join between r and
//    Trev(r)."
//
// For every stock q the example poses a range query against the
// Trev-transformed index (Algorithm 2 with the on-the-fly transformed
// traversal): a match x means D(-NF(x), NF(q)) <= eps, i.e. x's normalized
// price path mirrors q's.
//
// Build & run:  ./build/examples/hedging_pairs

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "tsq.h"

int main() {
  using namespace tsq;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "tsq_hedging").string();
  std::filesystem::create_directories(dir);

  // A market with a handful of genuinely opposite-moving pairs planted in
  // it (plus ~1000 unrelated stocks).
  workload::StockMarketOptions market_options;
  market_options.opposite_pairs = 8;
  market_options.opposite_noise = 0.005;  // tight mirrors
  auto market = workload::MakeStockMarket(/*seed=*/424242, market_options);

  DatabaseOptions options;
  options.directory = dir;
  options.name = "hedge";
  auto db = Database::Create(options).value();
  for (const TimeSeries& stock : market) {
    db->Insert(stock.name(), stock.values()).value();
  }
  TSQ_CHECK(db->BuildIndex().ok());
  std::printf("market: %llu stocks x %zu days\n",
              static_cast<unsigned long long>(db->size()),
              db->series_length());

  // --- the reverse join: r against Trev(r) ---------------------------------
  // kDataOnly applies Trev to the indexed data side only (reversing both
  // sides would cancel out). Trev is safe in both coordinate spaces: its
  // stretch vector is real (-1) and its translation is zero.
  QuerySpec spec;
  spec.transform = FeatureTransform::Spectral(transforms::Reverse(128));
  spec.mode = TransformMode::kDataOnly;
  const double kEps = 0.8;

  std::set<std::pair<SeriesId, SeriesId>> hedges;
  std::map<std::pair<SeriesId, SeriesId>, double> pair_distance;
  uint64_t total_candidates = 0;
  for (SeriesId q = 0; q < db->size(); ++q) {
    auto rec = db->Get(q).value();
    auto matches = db->RangeQuery(rec.values, kEps, spec).value();
    total_candidates += db->last_stats().candidates;
    for (const Match& m : matches) {
      if (m.id == q) continue;
      const auto key = std::minmax(q, m.id);
      if (hedges.insert({key.first, key.second}).second) {
        pair_distance[{key.first, key.second}] = m.distance;
      }
    }
  }

  std::printf(
      "\nhedge candidates (normalized price path of one mirrors the "
      "other, eps = %.1f):\n",
      kEps);
  for (const auto& [pair, d] : pair_distance) {
    std::printf("  %-10s <-> %-10s  (mirror distance %.3f)\n",
                market[pair.first].name().c_str(),
                market[pair.second].name().c_str(), d);
  }
  std::printf(
      "\nfound %zu pairs (planted opposite pairs: %zu, named OPPa/OPPb). "
      "The index filtered %llu candidates across %llu queries instead of "
      "comparing all %llu stocks per query.\n",
      hedges.size(), market_options.opposite_pairs,
      static_cast<unsigned long long>(total_candidates),
      static_cast<unsigned long long>(db->size()),
      static_cast<unsigned long long>(db->size()));
  return 0;
}
