// Copyright (c) 2026 The tsq Authors.
//
// Stock screener: the paper's Sec. 2 scenario end to end. Simulate a
// market of 1067 stocks (the paper's data set shape), index it, and screen
// for stocks whose *smoothed trend* matches a target stock — the "find
// stocks that behave in approximately the same way" query from the paper's
// introduction, with the 20-day moving average removing short-term
// fluctuations ([EM69]-style technical analysis).
//
// Build & run:  ./build/examples/stock_screener

#include <cstdio>
#include <filesystem>

#include "tsq.h"

int main() {
  using namespace tsq;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "tsq_screener").string();
  std::filesystem::create_directories(dir);

  // --- simulate and load the market ---------------------------------------
  workload::StockMarketOptions market_options;  // 1067 stocks x 128 days
  auto market = workload::MakeStockMarket(/*seed=*/2026, market_options);

  DatabaseOptions options;
  options.directory = dir;
  options.name = "market";
  auto db = Database::Create(options).value();
  for (const TimeSeries& stock : market) {
    db->Insert(stock.name(), stock.values()).value();
  }
  TSQ_CHECK(db->BuildIndex().ok());
  std::printf("market: %llu stocks, %zu trading days each\n",
              static_cast<unsigned long long>(db->size()),
              db->series_length());

  // --- screen for trend-alikes of a target stock --------------------------
  // SIMa0000 has a planted partner (SIMb0000) whose day-to-day prices look
  // different but whose smoothed trend matches.
  const TimeSeries& target = market[0];
  std::printf("\ntarget stock: %s (mean %.2f, daily close range %.2f-%.2f)\n",
              target.name().c_str(), target.Mean(), target.Min(),
              target.Max());

  QuerySpec trend;
  trend.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(128, 20));

  auto matches = db->RangeQuery(target.values(), /*epsilon=*/0.6, trend)
                     .value();
  std::printf("\nstocks within 0.6 of the target's 20-day smoothed trend:\n");
  for (const Match& m : matches) {
    if (m.name == target.name()) continue;  // skip self
    std::printf("  %-10s distance %.3f\n", m.name.c_str(), m.distance);
  }

  // Without smoothing, the partner is NOT within range: short-term noise
  // dominates the raw distance. This is the paper's Example 1.1 at market
  // scale.
  auto raw = db->RangeQuery(target.values(), /*epsilon=*/0.6).value();
  std::printf(
      "\nsame query without smoothing finds %zu stocks (and %zu with) — "
      "the moving average is what surfaces the trend-alikes.\n",
      raw.size() - 1, matches.size() - 1);

  // --- top-5 trend neighbors, regardless of threshold ---------------------
  auto top = db->Knn(target.values(), /*k=*/6, trend).value();
  std::printf("\ntop trend neighbors (excluding self):\n");
  for (const Match& m : top) {
    if (m.name == target.name()) continue;
    std::printf("  %-10s distance %.3f\n", m.name.c_str(), m.distance);
  }

  // --- GK95-style screen: same shape AND a specific price band ------------
  QuerySpec banded = trend;
  banded.window = MeanStdWindow{20.0, 60.0, 0.0, 1e9};
  auto in_band =
      db->RangeQuery(target.values(), /*epsilon=*/2.0, banded).value();
  std::printf(
      "\ntrend-alikes (eps 2.0) whose mean price lies in [20, 60]: %zu\n",
      in_band.size());
  for (const Match& m : in_band) {
    std::printf("  %-10s distance %.3f\n", m.name.c_str(), m.distance);
  }
  return 0;
}
