// Copyright (c) 2026 The tsq Authors.
//
// Time-warping search (the paper's Example 1.2 and Appendix A), plus the
// cost-bounded similarity distance of Eq. 10.
//
// Scenario: the database stores weekly-sampled series; a probe series was
// sampled twice as often (or: we want to match series that unfold at half
// speed). The Appendix A transformation builds the first k Fourier
// coefficients of the m-fold time-stretched series directly from the
// original coefficients — no resampling of the data needed.
//
// Build & run:  ./build/examples/warping_search

#include <cstdio>
#include <filesystem>

#include "tsq.h"

int main() {
  using namespace tsq;

  const size_t kShortLen = 64;   // stored series length
  const size_t kWarp = 2;        // stretch factor
  const size_t kLongLen = kShortLen * kWarp;

  // --- database of *stretched* series --------------------------------------
  // We index the stretched versions (length 128); probes are short series
  // (length 64) whose warped spectrum the Appendix A transform predicts.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tsq_warp").string();
  std::filesystem::create_directories(dir);
  DatabaseOptions options;
  options.directory = dir;
  options.name = "warp";
  auto db = Database::Create(options).value();

  Rng rng(99);
  std::vector<RealVec> originals;
  for (int i = 0; i < 200; ++i) {
    RealVec s = workload::RandomWalkSeries(&rng, kShortLen, {});
    originals.push_back(s);
    char name[16];
    std::snprintf(name, sizeof(name), "slow%03d", i);
    // The database holds the slow (stretched) versions.
    db->Insert(name, StretchTime(s, kWarp)).value();
  }
  TSQ_CHECK(db->BuildIndex().ok());
  std::printf("database: %llu stretched series of length %zu\n",
              static_cast<unsigned long long>(db->size()), kLongLen);

  // --- probe with a fast (short) series -------------------------------------
  // Probe = original #42 plus a little noise. Its 2x-stretched version
  // should be the nearest stored series — found by stretching the probe in
  // the time domain (cheap here, but the point is the spectra match the
  // Appendix A prediction).
  RealVec probe = originals[42];
  for (double& v : probe) v += rng.Uniform(-0.3, 0.3);

  auto matches =
      db->RangeQuery(StretchTime(probe, kWarp), /*epsilon=*/1.5).value();
  std::printf("\nrange query with the stretched probe (eps 1.5):\n");
  for (const Match& m : matches) {
    std::printf("  %-8s distance %.3f%s\n", m.name.c_str(), m.distance,
                m.name == "slow042" ? "   <- the right series" : "");
  }

  // --- the Appendix A identity, verified on the probe ----------------------
  // warp-transforming the short probe's spectrum == spectrum of the
  // stretched probe (on the first k coefficients).
  const size_t k = 8;
  const LinearTransform warp = transforms::TimeWarp(
      kShortLen, kWarp, k, transforms::WarpConvention::kUnitary);
  ComplexVec predicted =
      dft::Truncate(warp.Apply(dft::Forward(probe)), k);
  ComplexVec actual =
      dft::Truncate(dft::Forward(StretchTime(probe, kWarp)), k);
  std::printf(
      "\nAppendix A check: || predicted - actual || over first %zu "
      "coefficients = %.2e (machine precision)\n",
      k, cvec::Distance(predicted, actual));

  // --- Eq. 10: cost-bounded similarity --------------------------------------
  // "Is the probe similar to series #17?" — directly, after smoothing, or
  // after reversing, each at a cost; Eq. 10 takes the cheapest explanation.
  ComplexVec x = dft::Forward(probe);
  ComplexVec y = dft::Forward(originals[17]);
  std::vector<LinearTransform> toolbox = {
      transforms::MovingAverage(kShortLen, 8, /*cost=*/1.0),
      transforms::Reverse(kShortLen, /*cost=*/2.0),
  };
  auto verdict = CostedDistance(x, y, toolbox).value();
  std::printf(
      "\nEq. 10 costed distance probe vs slow017: %.3f "
      "(transform cost %.1f; applied to x: %zu ops, to y: %zu ops)\n",
      verdict.distance, verdict.transform_cost, verdict.applied_to_x.size(),
      verdict.applied_to_y.size());
  for (const std::string& op : verdict.applied_to_x) {
    std::printf("  x <- %s\n", op.c_str());
  }
  for (const std::string& op : verdict.applied_to_y) {
    std::printf("  y <- %s\n", op.c_str());
  }
  return 0;
}
