// Copyright (c) 2026 The tsq Authors.
//
// Quickstart: the 60-second tour of tsq.
//
//   1. create a database,
//   2. insert some time series,
//   3. build the k-index (R*-tree over DFT features),
//   4. run similarity queries — plain, smoothed (moving average), and
//      k-nearest-neighbor.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "tsq.h"

int main() {
  using namespace tsq;

  // --- 1. Create a database ------------------------------------------------
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tsq_quickstart").string();
  std::filesystem::create_directories(dir);
  DatabaseOptions options;
  options.directory = dir;
  options.name = "quickstart";
  // options.layout defaults to the paper's 6-D layout: (mean, std) plus
  // the polar coordinates of DFT coefficients X_1, X_2 of the normal form.
  auto db = Database::Create(options).value();

  // --- 2. Insert series ----------------------------------------------------
  // The two sequences of the paper's Example 1.1 plus a few random walks.
  db->Insert("s1", workload::paper::Fig1SeriesS1().values()).value();
  db->Insert("s2", workload::paper::Fig1SeriesS2().values()).value();
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "walk%02d", i);
    db->Insert(name, workload::RandomWalkSeries(&rng, 15, {})).value();
  }
  std::printf("inserted %llu series of length %zu\n",
              static_cast<unsigned long long>(db->size()),
              db->series_length());

  // --- 3. Build the index --------------------------------------------------
  TSQ_CHECK(db->BuildIndex().ok());

  // --- 4. Query ------------------------------------------------------------
  const RealVec query = workload::paper::Fig1SeriesS1().values();

  // 4a. Plain range query: who is within eps of s1's normal form?
  auto plain = db->RangeQuery(query, /*epsilon=*/2.0).value();
  std::printf("\nplain range query (eps = 2.0): %zu matches\n", plain.size());
  for (const Match& m : plain) {
    std::printf("  %-8s distance %.3f\n", m.name.c_str(), m.distance);
  }

  // 4b. The paper's motivating query: s1 and s2 look different day to day
  // but nearly identical after 3-day moving-average smoothing.
  QuerySpec smoothed;
  smoothed.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(15, 3));
  auto ma = db->RangeQuery(query, /*epsilon=*/2.0, smoothed).value();
  std::printf("\nsmoothed range query (Tmavg3, eps = 2.0): %zu matches\n",
              ma.size());
  for (const Match& m : ma) {
    std::printf("  %-8s distance %.3f%s\n", m.name.c_str(), m.distance,
                m.name == "s2" ? "   <- found only after smoothing" : "");
  }

  // 4c. Nearest neighbors under the same smoothing.
  auto knn = db->Knn(query, /*k=*/3, smoothed).value();
  std::printf("\n3 nearest neighbors under Tmavg3:\n");
  for (const Match& m : knn) {
    std::printf("  %-8s distance %.3f\n", m.name.c_str(), m.distance);
  }

  // Stats of the last query: how much work the index did.
  const QueryStats& stats = db->last_stats();
  std::printf(
      "\nlast query stats: %llu candidates, %llu node accesses, %.3f ms\n",
      static_cast<unsigned long long>(stats.candidates),
      static_cast<unsigned long long>(stats.nodes_visited), stats.elapsed_ms);
  return 0;
}
