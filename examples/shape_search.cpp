// Copyright (c) 2026 The tsq Authors.
//
// Shape search: the paper's introductory query — "stocks that increased
// linearly up to October 1987, and then crashed" — answered with the
// [FRM94]-style subsequence index. The query pattern is drawn by hand
// (a ramp followed by a cliff); the index finds every place in the market
// where that shape occurs, no matter which stock or when.
//
// Build & run:  ./build/examples/shape_search

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "tsq.h"

int main() {
  using namespace tsq;

  const size_t kDays = 256;
  const size_t kWindow = 48;

  // --- a market with planted boom-crash episodes ---------------------------
  workload::StockMarketOptions market_options;
  market_options.num_series = 400;
  market_options.length = kDays;
  market_options.similar_pairs = 0;
  market_options.opposite_pairs = 0;
  auto market = workload::MakeStockMarket(/*seed=*/1987, market_options);

  // Plant a ramp-then-crash episode into a few stocks at known offsets.
  Rng rng(10);
  struct Plant {
    size_t series;
    size_t offset;
  };
  std::vector<Plant> plants = {{7, 60}, {123, 150}, {289, 30}};
  for (const Plant& plant : plants) {
    RealVec values = market[plant.series].values();
    const double base = values[plant.offset];
    for (size_t t = 0; t < kWindow; ++t) {
      const double ramp_len = 0.75 * kWindow;
      double v;
      if (static_cast<double>(t) < ramp_len) {
        v = base * (1.0 + 0.5 * static_cast<double>(t) / ramp_len);  // +50%
      } else {
        v = base * (1.5 - 1.0 * (static_cast<double>(t) - ramp_len) /
                              (kWindow - ramp_len));  // crash to 50%
      }
      values[plant.offset + t] = v * (1.0 + 0.004 * rng.Normal());
    }
    market[plant.series] = TimeSeries(values, market[plant.series].name());
  }

  // --- index every sliding window -------------------------------------------
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tsq_shape").string();
  std::filesystem::create_directories(dir);
  SubsequenceIndexOptions options;
  options.window = kWindow;
  options.coefficients = 4;
  options.trail_piece = 16;
  options.path = dir + "/shape.pages";
  auto index = SubsequenceIndex::Create(options).value();
  for (SeriesId id = 0; id < market.size(); ++id) {
    TSQ_CHECK(index->AddSeries(id, market[id].values()).ok());
  }
  std::printf(
      "indexed %llu sliding windows (%llu trail pieces) over %zu stocks\n",
      static_cast<unsigned long long>(index->num_windows()),
      static_cast<unsigned long long>(index->num_pieces()), market.size());

  // --- the query shape: ramp then cliff, in normalized units ---------------
  // Searching raw prices would hard-code a price level; instead the probe
  // is scaled to each plant's neighborhood. Here we demonstrate with the
  // level of the first plant; a production screener would normalize
  // windows (see DESIGN.md future work).
  const double base = market[plants[0].series].values()[plants[0].offset];
  RealVec shape(kWindow);
  for (size_t t = 0; t < kWindow; ++t) {
    const double ramp_len = 0.75 * kWindow;
    shape[t] = (static_cast<double>(t) < ramp_len)
                   ? base * (1.0 + 0.5 * static_cast<double>(t) / ramp_len)
                   : base * (1.5 - 1.0 * (static_cast<double>(t) - ramp_len) /
                                       (kWindow - ramp_len));
  }

  auto fetch = [&market](SeriesId id) -> Result<RealVec> {
    return market[id].values();
  };
  std::vector<SubsequenceMatch> matches;
  QueryStats stats;
  TSQ_CHECK(index
                ->RangeSearch(shape, /*epsilon=*/0.05 * base * 2, fetch,
                              &matches, &stats)
                .ok());

  std::printf("\nboom-crash occurrences (eps scaled to price level):\n");
  for (const SubsequenceMatch& m : matches) {
    std::printf("  %-12s day %3zu  distance %.3f\n",
                market[m.id].name().c_str(), m.offset, m.distance);
  }
  std::printf(
      "\nplanted at: %s day %zu (others are at different price levels and "
      "need their own scaled probes)\n",
      market[plants[0].series].name().c_str(), plants[0].offset);
  std::printf("(%llu candidate trail pieces of %llu total)\n",
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(index->num_pieces()));
  return 0;
}
